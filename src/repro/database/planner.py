"""Logical query plans for the SELECT executor.

The planner compiles a parsed SELECT AST into a small logical plan — a tree
of relational operators (scan → filter → join → group → project → order →
limit) in the style of Opteryx's AST → plan → execute DAG — which the
executor then runs.  Planning is where the three optimisations that matter
for the MCTS reward loop's query traffic live:

* **hash equi-joins** — ``JOIN ... ON a = b`` conditions and comma-join
  ``WHERE`` equality conjuncts become :class:`HashJoinOp` nodes (build on the
  right input, probe from the left, preserving nested-loop row order), so a
  two-table join costs O(|L| + |R| + |out|) instead of O(|L|·|R|);
* **predicate pushdown** — ``WHERE`` conjuncts that reference a single FROM
  item are evaluated directly above that item's scan, before any join
  multiplies rows;
* **projection pruning** — base-table scans materialise only the columns the
  statement actually references.

The planner is deliberately conservative: any construct it cannot prove safe
(subqueries inside candidate predicates, FROM subqueries with statically
unknown schemas, non-equi join conditions, dtype combinations whose equality
semantics rely on the executor's value coercion) falls back to the
cross-join + filter strategy of the original interpreter, so planned
execution is result-identical — including row order — to interpreting the
AST node by node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..sqlparser import L, Node, to_sql
from .catalog import Catalog
from .functions import is_aggregate
from .statistics import estimate_equi_join_rows
from .table import RelColumn, Relation
from .types import DataType


class PlanningError(Exception):
    """Raised when a SELECT AST cannot be compiled into a plan."""


# ---------------------------------------------------------------------------
# plan statistics (wired into PipelineResult diagnostics by core.pipeline)
# ---------------------------------------------------------------------------


@dataclass
class PlanStats:
    """Counters describing planner and executor activity.

    ``core.pipeline`` attaches the executor's instance of this object to
    :class:`repro.core.config.PipelineResult` so benchmarks and callers can
    see how much work the plan layer saved.
    """

    plans_compiled: int = 0
    plan_cache_hits: int = 0
    hash_joins_planned: int = 0
    nested_loop_joins_planned: int = 0
    cross_joins_planned: int = 0
    predicates_pushed: int = 0
    columns_pruned: int = 0
    hash_joins_executed: int = 0
    nested_loop_joins_executed: int = 0
    cross_joins_executed: int = 0
    result_cache_hits: int = 0
    result_cache_misses: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


# ---------------------------------------------------------------------------
# plan operators
# ---------------------------------------------------------------------------


@dataclass
class ScanOp:
    """Scan a base table, keeping only the referenced columns."""

    table: str
    qualifier: str
    schema: list[RelColumn]
    #: indices into the base table's column list; ``None`` keeps every column
    column_indices: Optional[list[int]] = None
    #: single-table predicates pushed below the join (applied after the scan)
    predicates: list[Node] = field(default_factory=list)
    estimated_rows: float = 0.0


@dataclass
class SubqueryScanOp:
    """Execute a FROM-clause subquery; its schema is only known at run time."""

    stmt: Node
    alias: Optional[str]
    schema: Optional[list[RelColumn]] = None
    estimated_rows: float = 0.0


@dataclass
class FilterOp:
    """Apply pushed predicates above an operator whose scans cannot hold them."""

    child: "PlanOp"
    predicates: list[Node]
    schema: Optional[list[RelColumn]] = None
    estimated_rows: float = 0.0


@dataclass
class HashJoinOp:
    """Equi-join: build a hash table on the right input, probe from the left.

    Probing left rows in order and emitting right matches in right-row order
    reproduces the exact row order of the interpreter's cross-join + filter,
    so planned results are byte-identical.  ``residual`` holds non-equi ON
    conjuncts, applied after matching and (for outer joins) before padding.
    """

    left: "PlanOp"
    right: "PlanOp"
    left_key_idx: list[int]
    right_key_idx: list[int]
    join_type: str = "INNER"  # INNER / LEFT / RIGHT
    residual: Optional[Node] = None
    schema: Optional[list[RelColumn]] = None
    estimated_rows: float = 0.0


@dataclass
class NestedLoopJoinOp:
    """Fallback join: cross product + predicate filter (+ outer padding)."""

    left: "PlanOp"
    right: "PlanOp"
    condition: Optional[Node]
    join_type: str = "INNER"
    schema: Optional[list[RelColumn]] = None
    estimated_rows: float = 0.0


@dataclass
class CrossJoinOp:
    """Cartesian product of two inputs (no usable join predicate)."""

    left: "PlanOp"
    right: "PlanOp"
    schema: Optional[list[RelColumn]] = None
    estimated_rows: float = 0.0


PlanOp = Union[ScanOp, SubqueryScanOp, FilterOp, HashJoinOp, NestedLoopJoinOp, CrossJoinOp]


@dataclass
class Plan:
    """A compiled SELECT: a source operator tree plus the clause stages."""

    source: Optional[PlanOp]           # None for FROM-less selects
    residual_where: Optional[Node]     # conjuncts not pushed / not join keys
    select: Node
    groupby: Optional[Node] = None
    having: Optional[Node] = None
    orderby: Optional[Node] = None
    limit: Optional[Node] = None
    distinct: bool = False
    has_aggregates: bool = False

    # -- debugging / diagnostics ----------------------------------------

    def explain(self) -> str:
        """A compact indented rendering of the plan (top stage first)."""
        lines: list[str] = []
        if self.limit is not None:
            lines.append("Limit")
        if self.orderby is not None:
            lines.append("OrderBy")
        if self.distinct:
            lines.append("Distinct")
        if self.groupby is not None or self.has_aggregates:
            lines.append("GroupAggregate")
        lines.append("Project")
        if self.residual_where is not None:
            lines.append(f"Filter: {to_sql(self.residual_where)}")
        out = [f"{'  ' * i}{name}" for i, name in enumerate(lines)]
        depth = len(lines)
        if self.source is None:
            out.append(f"{'  ' * depth}SingleRow")
        else:
            out.extend(_explain_op(self.source, depth))
        return "\n".join(out)


def _explain_op(op: PlanOp, depth: int) -> list[str]:
    pad = "  " * depth
    if isinstance(op, ScanOp):
        cols = "*" if op.column_indices is None else ", ".join(
            c.name for c in op.schema
        )
        line = f"{pad}Scan {op.table} [{cols}] (~{op.estimated_rows:.0f} rows)"
        if op.predicates:
            preds = " AND ".join(to_sql(p) for p in op.predicates)
            line += f" filter: {preds}"
        return [line]
    if isinstance(op, SubqueryScanOp):
        return [f"{pad}SubqueryScan as {op.alias or '?'}"]
    if isinstance(op, FilterOp):
        preds = " AND ".join(to_sql(p) for p in op.predicates)
        return [f"{pad}Filter: {preds}"] + _explain_op(op.child, depth + 1)
    if isinstance(op, HashJoinOp):
        keys = ", ".join(
            f"{op.left.schema[li].qualified} = {op.right.schema[ri].qualified}"
            for li, ri in zip(op.left_key_idx, op.right_key_idx)
        )
        head = f"{pad}HashJoin[{op.join_type}] on {keys} (~{op.estimated_rows:.0f} rows)"
        if op.residual is not None:
            head += f" residual: {to_sql(op.residual)}"
        return [head] + _explain_op(op.left, depth + 1) + _explain_op(op.right, depth + 1)
    if isinstance(op, NestedLoopJoinOp):
        cond = to_sql(op.condition) if op.condition is not None else "true"
        return (
            [f"{pad}NestedLoopJoin[{op.join_type}] on {cond}"]
            + _explain_op(op.left, depth + 1)
            + _explain_op(op.right, depth + 1)
        )
    if isinstance(op, CrossJoinOp):
        return (
            [f"{pad}CrossJoin"]
            + _explain_op(op.left, depth + 1)
            + _explain_op(op.right, depth + 1)
        )
    raise PlanningError(f"unknown plan operator {op!r}")


# ---------------------------------------------------------------------------
# planner
# ---------------------------------------------------------------------------


class Planner:
    """Compiles SELECT statement ASTs into :class:`Plan` objects."""

    def __init__(self, catalog: Catalog, stats: Optional[PlanStats] = None) -> None:
        self.catalog = catalog
        self.stats = stats or PlanStats()

    # -- public API --------------------------------------------------------

    def plan(self, stmt: Node) -> Plan:
        if stmt.label != L.SELECT_STMT:
            raise PlanningError(f"cannot plan node {stmt.label!r}")
        clauses = {child.label: child for child in stmt.children}
        select = clauses.get(L.SELECT_CLAUSE)
        if select is None:
            raise PlanningError("SELECT statement without a projection list")

        referenced = self._referenced_columns(stmt, select)
        where = clauses.get(L.WHERE_CLAUSE)
        predicate = where.children[0] if where is not None else None

        from_clause = clauses.get(L.FROM_CLAUSE)
        if from_clause is None:
            source, residual = None, predicate
        else:
            source, residual = self._plan_from(from_clause, predicate, referenced)

        having = clauses.get(L.HAVING_CLAUSE)
        self.stats.plans_compiled += 1
        return Plan(
            source=source,
            residual_where=residual,
            select=select,
            groupby=clauses.get(L.GROUPBY_CLAUSE),
            having=having,
            orderby=clauses.get(L.ORDERBY_CLAUSE),
            limit=clauses.get(L.LIMIT_CLAUSE),
            distinct=select.value == "DISTINCT",
            has_aggregates=contains_aggregate(select) or having is not None,
        )

    # -- projection pruning -------------------------------------------------

    def _referenced_columns(
        self, stmt: Node, select: Node
    ) -> Optional[tuple[set, set]]:
        """Column names referenced anywhere in the statement.

        Returns ``(bare_names, qualified_pairs)`` where ``qualified_pairs``
        holds lowercase ``(qualifier, name)`` tuples, or ``None`` when a bare
        ``*`` projection forces every column to be materialised.  The walk
        includes subqueries, so correlated references keep their columns.
        """
        for item in select.children:
            expr = item.children[0]
            if expr.label == L.STAR and expr.value in ("*", None):
                return None
        bare: set = set()
        qualified: set = set()
        for node in stmt.walk():
            if node.label != L.COLUMN:
                continue
            name = str(node.value)
            if "." in name:
                q, b = name.split(".", 1)
                qualified.add((q.lower(), b))
            else:
                bare.add(name)
        return bare, qualified

    # -- FROM planning -------------------------------------------------------

    def _plan_from(
        self,
        from_clause: Node,
        predicate: Optional[Node],
        referenced: Optional[tuple[set, set]],
    ) -> tuple[PlanOp, Optional[Node]]:
        items = [self._plan_table_ref(ref, referenced) for ref in from_clause.children]
        schemas = [op.schema for op in items]
        known = all(s is not None for s in schemas)

        conjuncts = _split_conjuncts(predicate) if predicate is not None else []
        pushed: list[list[Node]] = [[] for _ in items]
        join_keys: list[tuple[int, int, int, int]] = []  # (i, li, j, lj), i < j
        residual: list[Node] = []

        if known and len(items) >= 1:
            for conj in conjuncts:
                target = self._classify_conjunct(conj, schemas)
                if target is None:
                    residual.append(conj)
                elif isinstance(target, int):
                    pushed[target].append(conj)
                    self.stats.predicates_pushed += 1
                else:
                    join_keys.append(target)
        else:
            residual = list(conjuncts)

        # attach single-item predicates directly above their item
        for idx, preds in enumerate(pushed):
            if not preds:
                continue
            op = items[idx]
            if isinstance(op, ScanOp):
                op.predicates.extend(preds)
            else:
                items[idx] = FilterOp(op, preds, schema=op.schema)

        # left-to-right join chain (preserves FROM order and row order)
        acc = items[0]
        offsets = [0]
        for i in range(1, len(items)):
            offsets.append(offsets[-1] + len(schemas[i - 1] or []))
        for j in range(1, len(items)):
            keys = [
                (offsets[i] + li, lj)
                for (i, li, jj, lj) in join_keys
                if jj == j
            ]
            right = items[j]
            if keys and known:
                left_idx = [k[0] for k in keys]
                right_idx = [k[1] for k in keys]
                acc = HashJoinOp(
                    acc,
                    right,
                    left_idx,
                    right_idx,
                    "INNER",
                    schema=(acc.schema or []) + (right.schema or []),
                    estimated_rows=self._estimate_join(acc, right, left_idx, right_idx),
                )
                self.stats.hash_joins_planned += 1
            else:
                acc = CrossJoinOp(
                    acc,
                    right,
                    schema=(acc.schema + right.schema) if known else None,
                    estimated_rows=acc.estimated_rows * right.estimated_rows,
                )
                self.stats.cross_joins_planned += 1

        residual_node = _combine_conjuncts(residual)
        return acc, residual_node

    def _plan_table_ref(
        self, ref: Node, referenced: Optional[tuple[set, set]]
    ) -> PlanOp:
        if ref.label == L.JOIN:
            return self._plan_join(ref, referenced)
        if ref.label != L.TABLE_REF:
            raise PlanningError(f"unexpected FROM element {ref.label!r}")
        source = ref.children[0]
        alias = None
        if len(ref.children) > 1 and ref.children[1].label == L.ALIAS:
            alias = str(ref.children[1].value)

        if source.label == L.TABLE_NAME:
            return self._plan_scan(str(source.value), alias, referenced)
        if source.label == L.SUBQUERY:
            return SubqueryScanOp(source.children[0], alias)
        raise PlanningError(f"unsupported table reference {source.label!r}")

    def _plan_scan(
        self,
        table_name: str,
        alias: Optional[str],
        referenced: Optional[tuple[set, set]],
    ) -> ScanOp:
        table = self.catalog.table(table_name)
        qualifier = alias or table.name
        keep: Optional[list[int]] = None
        if referenced is not None:
            bare, qualified = referenced
            q = qualifier.lower()
            keep = [
                i
                for i, c in enumerate(table.columns)
                if c.name in bare or (q, c.name) in qualified
            ]
            if len(keep) == len(table.columns):
                keep = None
            else:
                self.stats.columns_pruned += len(table.columns) - len(keep)
        columns = table.columns if keep is None else [table.columns[i] for i in keep]
        schema = [
            RelColumn(
                name=c.name,
                qualifier=qualifier,
                dtype=c.dtype,
                source=f"{table.name}.{c.name}",
            )
            for c in columns
        ]
        return ScanOp(
            table=table.name,
            qualifier=qualifier,
            schema=schema,
            column_indices=keep,
            estimated_rows=float(len(table.rows)),
        )

    def _plan_join(self, join: Node, referenced: Optional[tuple[set, set]]) -> PlanOp:
        left = self._plan_table_ref(join.children[0], referenced)
        right = self._plan_table_ref(join.children[1], referenced)
        condition = join.children[2].children[0]
        join_type = str(join.value or "INNER")

        if left.schema is None or right.schema is None:
            self.stats.nested_loop_joins_planned += 1
            return NestedLoopJoinOp(left, right, condition, join_type)

        keys: list[tuple[int, int]] = []
        residual: list[Node] = []
        for conj in _split_conjuncts(condition):
            key = self._equi_key(conj, left.schema, right.schema)
            if key is not None:
                keys.append(key)
            else:
                residual.append(conj)
        if not keys:
            self.stats.nested_loop_joins_planned += 1
            return NestedLoopJoinOp(
                left, right, condition, join_type,
                schema=left.schema + right.schema,
                estimated_rows=left.estimated_rows * right.estimated_rows,
            )
        left_idx = [k[0] for k in keys]
        right_idx = [k[1] for k in keys]
        self.stats.hash_joins_planned += 1
        return HashJoinOp(
            left,
            right,
            left_idx,
            right_idx,
            join_type,
            residual=_combine_conjuncts(residual),
            schema=left.schema + right.schema,
            estimated_rows=self._estimate_join(left, right, left_idx, right_idx),
        )

    # -- conjunct classification ---------------------------------------------

    def _classify_conjunct(
        self, conj: Node, schemas: Sequence[Optional[list[RelColumn]]]
    ) -> Optional[object]:
        """Classify one WHERE conjunct against the top-level FROM items.

        Returns an item index (pushable single-item predicate), an
        ``(i, li, j, lj)`` join-key tuple with ``i < j`` (hash-joinable
        equality), or ``None`` (residual).
        """
        columns = _collect_columns(conj)
        if columns is None or not columns:
            return None
        located = []
        for name in columns:
            loc = _resolve_item(schemas, name)
            if loc is None:
                return None  # outer / unknown reference: keep at the top
            located.append(loc)
        item_indices = {item for item, _ in located}
        if len(item_indices) == 1:
            return located[0][0]
        # two-item equality between plain columns → hash-join key candidate
        if (
            len(item_indices) == 2
            and conj.label == L.BINOP
            and conj.value == "="
            and len(conj.children) == 2
            and conj.children[0].label == L.COLUMN
            and conj.children[1].label == L.COLUMN
        ):
            (i, li), (j, lj) = located[0], located[1]
            if i != j and _hash_compatible(
                schemas[i][li].dtype, schemas[j][lj].dtype
            ):
                if i < j:
                    return (i, li, j, lj)
                return (j, lj, i, li)
        return None

    def _equi_key(
        self, conj: Node, left: list[RelColumn], right: list[RelColumn]
    ) -> Optional[tuple[int, int]]:
        """``(left_idx, right_idx)`` when the conjunct is a hashable equality."""
        if not (
            conj.label == L.BINOP
            and conj.value == "="
            and len(conj.children) == 2
            and conj.children[0].label == L.COLUMN
            and conj.children[1].label == L.COLUMN
        ):
            return None
        # resolve over the combined schema exactly as the interpreter's
        # first-match lookup over the cross-joined relation would
        combined = left + right
        a = _resolve_in_schema(combined, str(conj.children[0].value))
        b = _resolve_in_schema(combined, str(conj.children[1].value))
        if a is None or b is None:
            return None
        if a < len(left) and b >= len(left):
            li, ri = a, b - len(left)
        elif b < len(left) and a >= len(left):
            li, ri = b, a - len(left)
        else:
            return None  # both bind to the same side: not a join predicate
        if not _hash_compatible(left[li].dtype, right[ri].dtype):
            return None
        return li, ri

    # -- estimates -----------------------------------------------------------

    def _estimate_join(
        self,
        left: PlanOp,
        right: PlanOp,
        left_idx: list[int],
        right_idx: list[int],
    ) -> float:
        left_distinct = self._key_distinct(left, left_idx)
        right_distinct = self._key_distinct(right, right_idx)
        return estimate_equi_join_rows(
            int(left.estimated_rows), int(right.estimated_rows),
            left_distinct, right_distinct,
        )

    def _key_distinct(self, op: PlanOp, key_idx: list[int]) -> Optional[int]:
        if not isinstance(op, ScanOp) or len(key_idx) != 1 or op.schema is None:
            return None
        col = op.schema[key_idx[0]]
        if col.source is None:
            return None
        try:
            return self.catalog.statistics(col.source).distinct_count
        except Exception:
            return None


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _split_conjuncts(node: Node) -> list[Node]:
    """Flatten nested AND nodes into a conjunct list."""
    if node.label == L.AND:
        out: list[Node] = []
        for child in node.children:
            out.extend(_split_conjuncts(child))
        return out
    return [node]


def _combine_conjuncts(conjuncts: list[Node]) -> Optional[Node]:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return Node(L.AND, None, conjuncts)


def _collect_columns(node: Node) -> Optional[list[str]]:
    """All column names in a predicate, or ``None`` when it has a subquery.

    Subqueries may contain correlated references into sibling FROM items, so
    predicates containing them are never pushed or turned into join keys.
    """
    columns: list[str] = []
    for n in node.walk():
        if n.label in (L.SUBQUERY, L.IN_QUERY):
            return None
        if n.label == L.COLUMN:
            columns.append(str(n.value))
    return columns


def _resolve_in_schema(schema: list[RelColumn], name: str) -> Optional[int]:
    """First-match column resolution, delegating to ``Relation.find`` so the
    planner's name binding can never drift from the executor's lookup."""
    qualifier: Optional[str] = None
    bare = name
    if "." in name:
        qualifier, bare = name.split(".", 1)
    return Relation(columns=schema).find(bare, qualifier)


def _resolve_item(
    schemas: Sequence[Optional[list[RelColumn]]], name: str
) -> Optional[tuple[int, int]]:
    """Resolve a column over the concatenated item schemas, in item order.

    Mirrors the interpreter's lookup over the cross-joined relation: the
    first matching column (left to right) wins.
    """
    for item, schema in enumerate(schemas):
        if schema is None:
            return None
        idx = _resolve_in_schema(schema, name)
        if idx is not None:
            return item, idx
    return None


def _hash_compatible(a: DataType, b: DataType) -> bool:
    """True when raw-value hashing matches the executor's ``=`` semantics.

    Numeric pairs are safe because Python guarantees ``hash(1) == hash(1.0)``;
    textual pairs compare as strings on both paths.  Mixed numeric / textual
    pairs go through the executor's value coercion, which a hash table cannot
    reproduce, so they fall back to nested-loop evaluation.
    """
    numeric = (DataType.INT, DataType.FLOAT, DataType.BOOL)
    textual = (DataType.STR, DataType.DATE)
    if a in numeric and b in numeric:
        return True
    if a in textual and b in textual:
        return True
    return False


def contains_aggregate(node: Node) -> bool:
    """True when the expression contains an aggregate call of its own.

    Aggregates inside subqueries belong to the subquery.  Shared by the
    planner (grouping-stage detection) and the executor's schema description.
    """
    if node.label == L.SUBQUERY:
        return False
    if node.label == L.FUNC and is_aggregate(str(node.value)):
        return True
    return any(contains_aggregate(c) for c in node.children)
