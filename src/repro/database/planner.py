"""Logical query plans for the SELECT executor.

The planner compiles a parsed SELECT AST into a small logical plan — a tree
of relational operators (scan → filter → join → group → project → order →
limit) in the style of Opteryx's AST → plan → execute DAG — which the
executor then runs.  Planning is where the three optimisations that matter
for the MCTS reward loop's query traffic live:

* **hash equi-joins** — ``JOIN ... ON a = b`` conditions and comma-join
  ``WHERE`` equality conjuncts become :class:`HashJoinOp` nodes (build on the
  right input, probe from the left, preserving nested-loop row order), so a
  two-table join costs O(|L| + |R| + |out|) instead of O(|L|·|R|);
* **predicate pushdown** — ``WHERE`` conjuncts that reference a single FROM
  item are evaluated directly above that item's scan, before any join
  multiplies rows;
* **projection pruning** — base-table scans materialise only the columns the
  statement actually references;
* **subquery pushdown** — single-table ``WHERE`` conjuncts over a FROM
  subquery alias are rewritten into the subquery's own ``WHERE`` when every
  referenced output column provably maps to a base attribute, so the filter
  runs below the subquery's scan instead of above its materialised result;
* **cost-based join ordering** — when the query has an ``ORDER BY`` (which
  re-fixes the output row order), comma-join chains are greedily reordered
  smallest-estimated-input-first using ``statistics.py`` cardinalities, and a
  :class:`MapOp` restores the original column layout above the joins.

The planner is deliberately conservative: any construct it cannot prove safe
(subqueries inside candidate predicates, FROM subqueries with statically
unknown schemas, non-equi join conditions, dtype combinations whose equality
semantics rely on the executor's value coercion) falls back to the
cross-join + filter strategy of the original interpreter, so planned
execution is result-identical — including row order — to interpreting the
AST node by node.  Plans carry a ``columnar_ok`` flag telling the executor
whether the vectorized engine (:mod:`repro.database.columnar`) can run them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..sqlparser import L, Node, to_sql
from .catalog import Catalog
from .functions import is_aggregate
from .statistics import estimate_equi_join_rows, estimate_group_count
from .table import RelColumn, Relation
from .types import DataType, aggregate_result_type


class PlanningError(Exception):
    """Raised when a SELECT AST cannot be compiled into a plan."""


# ---------------------------------------------------------------------------
# plan statistics (wired into PipelineResult diagnostics by core.pipeline)
# ---------------------------------------------------------------------------


@dataclass
class PlanStats:
    """Counters describing planner and executor activity.

    ``core.pipeline`` attaches the executor's instance of this object to
    :class:`repro.core.config.PipelineResult` so benchmarks and callers can
    see how much work the plan layer saved.
    """

    plans_compiled: int = 0
    plan_cache_hits: int = 0
    hash_joins_planned: int = 0
    nested_loop_joins_planned: int = 0
    cross_joins_planned: int = 0
    predicates_pushed: int = 0
    subquery_pushdowns: int = 0
    joins_reordered: int = 0
    columns_pruned: int = 0
    hash_joins_executed: int = 0
    nested_loop_joins_executed: int = 0
    cross_joins_executed: int = 0
    #: vectorized block-wise nested-loop joins (the columnar engine's path);
    #: ``nested_loop_joins_executed`` counts the row engine's executions, so
    #: the two split the planned total by engine
    nested_loop_joins_columnar: int = 0
    columnar_executions: int = 0
    columnar_fallbacks: int = 0
    #: executions routed to the row engine at *plan* time
    #: (``Plan.columnar_ok`` false — e.g. a correlated subquery predicate)
    columnar_plan_gated: int = 0
    #: first unsupported construct per row-engine routing, reason → count;
    #: covers both plan-time gating and runtime ``UnsupportedColumnar``
    #: fallbacks, so coverage gaps are observable instead of a bare counter
    fallback_reasons: dict = field(default_factory=dict)
    #: column gathers avoided by chaining multi-conjunct filters over one
    #: shared selection-index vector instead of re-gathering per predicate
    filter_gathers_saved: int = 0
    result_cache_hits: int = 0
    result_cache_misses: int = 0

    def record_fallback(self, reason: str) -> None:
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1

    def as_dict(self) -> dict:
        d = dict(self.__dict__)
        d["fallback_reasons"] = dict(self.fallback_reasons)
        return d


# ---------------------------------------------------------------------------
# plan operators
# ---------------------------------------------------------------------------


@dataclass
class ScanOp:
    """Scan a base table, keeping only the referenced columns."""

    table: str
    qualifier: str
    schema: list[RelColumn]
    #: indices into the base table's column list; ``None`` keeps every column
    column_indices: Optional[list[int]] = None
    #: single-table predicates pushed below the join (applied after the scan)
    predicates: list[Node] = field(default_factory=list)
    estimated_rows: float = 0.0


@dataclass
class SubqueryScanOp:
    """Execute a FROM-clause subquery.

    ``schema`` is derived statically when the subquery is a plain projection
    of a single base table (which also makes the item eligible for hash joins
    and predicate classification); otherwise it stays ``None`` and the schema
    is only known at run time.  ``pushdown_map`` maps output column names to
    qualified base attributes of the inner FROM item, and ``pushdown_safe``
    records whether rewriting outer conjuncts into the inner WHERE preserves
    semantics (no LIMIT — filters commute with projection, DISTINCT and
    ORDER BY, but not with row-count truncation).
    """

    stmt: Node
    alias: Optional[str]
    schema: Optional[list[RelColumn]] = None
    estimated_rows: float = 0.0
    pushdown_map: Optional[dict[str, str]] = None
    pushdown_safe: bool = False


@dataclass
class FilterOp:
    """Apply pushed predicates above an operator whose scans cannot hold them."""

    child: "PlanOp"
    predicates: list[Node]
    schema: Optional[list[RelColumn]] = None
    estimated_rows: float = 0.0


@dataclass
class HashJoinOp:
    """Equi-join: build a hash table on the right input, probe from the left.

    Probing left rows in order and emitting right matches in right-row order
    reproduces the exact row order of the interpreter's cross-join + filter,
    so planned results are byte-identical.  ``residual`` holds non-equi ON
    conjuncts, applied after matching and (for outer joins) before padding.
    """

    left: "PlanOp"
    right: "PlanOp"
    left_key_idx: list[int]
    right_key_idx: list[int]
    join_type: str = "INNER"  # INNER / LEFT / RIGHT
    residual: Optional[Node] = None
    schema: Optional[list[RelColumn]] = None
    estimated_rows: float = 0.0


@dataclass
class NestedLoopJoinOp:
    """Fallback join: cross product + predicate filter (+ outer padding)."""

    left: "PlanOp"
    right: "PlanOp"
    condition: Optional[Node]
    join_type: str = "INNER"
    schema: Optional[list[RelColumn]] = None
    estimated_rows: float = 0.0


@dataclass
class CrossJoinOp:
    """Cartesian product of two inputs (no usable join predicate)."""

    left: "PlanOp"
    right: "PlanOp"
    schema: Optional[list[RelColumn]] = None
    estimated_rows: float = 0.0


@dataclass
class MapOp:
    """Reorder / select columns of the child relation by position.

    Emitted above a reordered join chain to restore the original FROM-order
    column layout, so every stage above the joins (residual filters, ``*``
    expansion, name resolution) sees exactly the schema the interpreter
    would build.
    """

    child: "PlanOp"
    indices: list[int]
    schema: list[RelColumn]
    estimated_rows: float = 0.0


PlanOp = Union[
    ScanOp, SubqueryScanOp, FilterOp, HashJoinOp, NestedLoopJoinOp, CrossJoinOp, MapOp
]


@dataclass
class Plan:
    """A compiled SELECT: a source operator tree plus the clause stages."""

    source: Optional[PlanOp]           # None for FROM-less selects
    residual_where: Optional[Node]     # conjuncts not pushed / not join keys
    select: Node
    groupby: Optional[Node] = None
    having: Optional[Node] = None
    orderby: Optional[Node] = None
    limit: Optional[Node] = None
    distinct: bool = False
    has_aggregates: bool = False
    #: True when the vectorized columnar engine can run this plan.  Gating is
    #: per stage: uncorrelated (self-contained) scalar and IN subqueries in
    #: the projection / WHERE / GROUP BY / HAVING / join conditions evaluate
    #: once and broadcast, so only *correlated* subqueries route the plan to
    #: the row engine.  Subqueries in FROM and in ORDER BY / LIMIT are always
    #: fine — they execute as separate statements or on the shared tail.
    columnar_ok: bool = True
    #: first construct that disqualified the plan (``None`` when columnar_ok)
    columnar_reason: Optional[str] = None

    # -- debugging / diagnostics ----------------------------------------

    def explain(self) -> str:
        """A compact indented rendering of the plan (top stage first)."""
        lines: list[str] = []
        if self.limit is not None:
            lines.append("Limit")
        if self.orderby is not None:
            lines.append("OrderBy")
        if self.distinct:
            lines.append("Distinct")
        if self.groupby is not None or self.has_aggregates:
            lines.append("GroupAggregate")
        lines.append("Project")
        if self.residual_where is not None:
            lines.append(f"Filter: {to_sql(self.residual_where)}")
        out = [f"{'  ' * i}{name}" for i, name in enumerate(lines)]
        depth = len(lines)
        if self.source is None:
            out.append(f"{'  ' * depth}SingleRow")
        else:
            out.extend(_explain_op(self.source, depth))
        return "\n".join(out)


def _explain_op(op: PlanOp, depth: int) -> list[str]:
    pad = "  " * depth
    if isinstance(op, ScanOp):
        cols = "*" if op.column_indices is None else ", ".join(
            c.name for c in op.schema
        )
        line = f"{pad}Scan {op.table} [{cols}] (~{op.estimated_rows:.0f} rows)"
        if op.predicates:
            preds = " AND ".join(to_sql(p) for p in op.predicates)
            line += f" filter: {preds}"
        return [line]
    if isinstance(op, SubqueryScanOp):
        return [f"{pad}SubqueryScan as {op.alias or '?'}"]
    if isinstance(op, FilterOp):
        preds = " AND ".join(to_sql(p) for p in op.predicates)
        return [f"{pad}Filter: {preds}"] + _explain_op(op.child, depth + 1)
    if isinstance(op, HashJoinOp):
        keys = ", ".join(
            f"{op.left.schema[li].qualified} = {op.right.schema[ri].qualified}"
            for li, ri in zip(op.left_key_idx, op.right_key_idx)
        )
        head = f"{pad}HashJoin[{op.join_type}] on {keys} (~{op.estimated_rows:.0f} rows)"
        if op.residual is not None:
            head += f" residual: {to_sql(op.residual)}"
        return [head] + _explain_op(op.left, depth + 1) + _explain_op(op.right, depth + 1)
    if isinstance(op, NestedLoopJoinOp):
        cond = to_sql(op.condition) if op.condition is not None else "true"
        return (
            [f"{pad}NestedLoopJoin[{op.join_type}] on {cond}"]
            + _explain_op(op.left, depth + 1)
            + _explain_op(op.right, depth + 1)
        )
    if isinstance(op, CrossJoinOp):
        return (
            [f"{pad}CrossJoin"]
            + _explain_op(op.left, depth + 1)
            + _explain_op(op.right, depth + 1)
        )
    if isinstance(op, MapOp):
        return [f"{pad}MapColumns (restore FROM order)"] + _explain_op(
            op.child, depth + 1
        )
    raise PlanningError(f"unknown plan operator {op!r}")


# ---------------------------------------------------------------------------
# planner
# ---------------------------------------------------------------------------


class Planner:
    """Compiles SELECT statement ASTs into :class:`Plan` objects.

    Args:
        catalog: schemas and statistics for scans and join estimates.
        stats: shared counters (defaults to a private instance).
        allow_reorder: permit the cost-based join-ordering pass.  Reordering
            changes intermediate row order, so even when enabled it is only
            applied to queries whose ``ORDER BY`` re-fixes the output order.
        order_insensitive: the caller declares that it never observes output
            row order (multiset semantics), extending join reordering to
            queries without the ORDER-BY gate.  Even then queries with a
            ``LIMIT`` keep FROM order — truncation turns a row-order change
            into a row-*set* change.  Off by default; the pipeline opts in
            for the MCTS reward loop only.
        columnar_subqueries: allow plans whose expression stages contain
            *uncorrelated* subqueries to stay columnar (evaluate-once +
            broadcast).  ``False`` restores the all-or-nothing gate — any
            subquery in a projection / WHERE / GROUP BY / HAVING / ON stage
            routes the whole plan to the row engine (kept as a kill switch
            and as the baseline for gating benchmarks).  Part of the plan
            cache key (:func:`repro.database.plancache.plan_key`).
    """

    def __init__(
        self,
        catalog: Catalog,
        stats: Optional[PlanStats] = None,
        allow_reorder: bool = True,
        order_insensitive: bool = False,
        columnar_subqueries: bool = True,
    ) -> None:
        self.catalog = catalog
        self.stats = stats or PlanStats()
        self.allow_reorder = allow_reorder
        self.order_insensitive = order_insensitive
        self.columnar_subqueries = columnar_subqueries

    # -- public API --------------------------------------------------------

    def plan(self, stmt: Node, order_insensitive: Optional[bool] = None) -> Plan:
        if stmt.label != L.SELECT_STMT:
            raise PlanningError(f"cannot plan node {stmt.label!r}")
        order_insensitive = (
            self.order_insensitive if order_insensitive is None else order_insensitive
        )
        clauses = {child.label: child for child in stmt.children}
        select = clauses.get(L.SELECT_CLAUSE)
        if select is None:
            raise PlanningError("SELECT statement without a projection list")

        referenced = self._referenced_columns(stmt, select)
        where = clauses.get(L.WHERE_CLAUSE)
        predicate = where.children[0] if where is not None else None
        orderby = clauses.get(L.ORDERBY_CLAUSE)

        from_clause = clauses.get(L.FROM_CLAUSE)
        if from_clause is None:
            source, residual = None, predicate
        else:
            reorder_ok = self.allow_reorder and (
                (
                    orderby is not None
                    and self._orderby_fixes_output(select, orderby)
                )
                or (order_insensitive and clauses.get(L.LIMIT_CLAUSE) is None)
            )
            source, residual = self._plan_from(
                from_clause, predicate, referenced, reorder_ok
            )

        groupby = clauses.get(L.GROUPBY_CLAUSE)
        having = clauses.get(L.HAVING_CLAUSE)
        self.stats.plans_compiled += 1
        columnar_ok, columnar_reason = self._gate_columnar(
            select, predicate, groupby, having, from_clause
        )
        return Plan(
            source=source,
            residual_where=residual,
            select=select,
            groupby=groupby,
            having=having,
            orderby=orderby,
            limit=clauses.get(L.LIMIT_CLAUSE),
            distinct=select.value == "DISTINCT",
            has_aggregates=contains_aggregate(select) or having is not None,
            columnar_ok=columnar_ok,
            columnar_reason=columnar_reason,
        )

    @staticmethod
    def _orderby_fixes_output(select: Node, orderby: Node) -> bool:
        """True when ORDER BY provably fixes the observable output order.

        Join reordering changes intermediate row order, and a stable sort
        preserves that order among rows that tie on the sort keys — so an
        ORDER BY only makes reordering safe when ties are *unobservable*.
        That holds when the sort keys cover every output column (all plain
        column projections, matched by name or alias): rows tying on all
        keys are then entirely identical, and swapping identical rows
        cannot change the result, even under LIMIT.
        """
        keys = set()
        for item in orderby.children:
            expr = item.children[0]
            if expr.label != L.COLUMN:
                return False
            keys.add(str(expr.value))
        for item in select.children:
            expr = item.children[0]
            if expr.label != L.COLUMN:
                return False  # expressions and * are never provably covered
            alias = None
            if len(item.children) > 1 and item.children[1].label == L.ALIAS:
                alias = str(item.children[1].value)
            if str(expr.value) not in keys and (alias is None or alias not in keys):
                return False
        return True

    # -- columnar gating ------------------------------------------------------

    def _gate_columnar(
        self,
        select: Node,
        predicate: Optional[Node],
        groupby: Optional[Node],
        having: Optional[Node],
        from_clause: Optional[Node],
    ) -> tuple[bool, Optional[str]]:
        """Per-stage columnar gating: ``(ok, first disqualifying construct)``.

        FROM subqueries execute as their own statements and ORDER BY / LIMIT
        run on the shared row-based tail, so only the projection, WHERE,
        GROUP BY, HAVING and join ON conditions are inspected.  A subquery in
        one of those stages no longer disqualifies the plan wholesale: when
        it is provably *self-contained* (every column reference resolves
        inside the subquery's own scope chain, so per-row re-evaluation is
        pure repetition) the columnar engine evaluates it once and broadcasts
        the scalar / membership set into the vectorized stage.  Only
        correlated subqueries — whose value genuinely depends on the outer
        row — still route the plan to the row engine.
        """
        stages = [
            ("projection", select),
            ("WHERE", predicate),
            ("GROUP BY", groupby),
            ("HAVING", having),
        ]
        if from_clause is not None:
            stages.extend(
                ("join condition", cond)
                for cond in _iter_join_conditions(from_clause)
            )
        for stage, node in stages:
            if node is None:
                continue
            stack = [node]
            while stack:
                n = stack.pop()
                if n.label == L.SUBQUERY:
                    if not self.columnar_subqueries:
                        return False, f"subquery in {stage}"
                    if not self._self_contained(n.children[0]):
                        return False, f"correlated subquery in {stage}"
                    continue  # inner statement validated recursively above
                if n.label == L.IN_QUERY:
                    stack.append(n.children[0])  # the tested expression
                    sub = n.children[1]
                    stmt = sub.children[0] if sub.label == L.SUBQUERY else sub
                    if not self.columnar_subqueries:
                        return False, f"IN subquery in {stage}"
                    if not self._self_contained(stmt):
                        return False, f"correlated IN subquery in {stage}"
                    continue
                stack.extend(n.children)
        return True, None

    def _self_contained(self, stmt: Node, outer_scopes: tuple = ()) -> bool:
        """True when executing ``stmt`` can never consult an outer row.

        Verifies that every column reference — in the statement's own
        expressions, in its expression subqueries (checked recursively with
        the scope chain extended), and in its FROM subqueries (checked
        against ``outer_scopes`` only: a FROM subquery executes *before* the
        statement's relation exists) — resolves somewhere inside the
        statement's own scope chain.  Anything unanalyzable (unknown tables,
        FROM subqueries without a derivable schema, select-alias references)
        conservatively reports ``False``.
        """
        if stmt.label == L.SUBQUERY:
            stmt = stmt.children[0]
        scope = self._stmt_scope(stmt)
        if scope is None:
            return False
        bare, qualified, from_substmts = scope
        scopes = ((bare, qualified), *outer_scopes)
        for sub in from_substmts:
            if not self._self_contained(sub, outer_scopes):
                return False
        clauses = {c.label: c for c in stmt.children}
        stack: list[Node] = []
        for label, clause in clauses.items():
            if label == L.FROM_CLAUSE:
                # table refs were consumed by _stmt_scope; only the JOIN ON
                # conditions carry expressions to check at this scope level
                stack.extend(_iter_join_conditions(clause))
            else:
                stack.append(clause)
        while stack:
            n = stack.pop()
            if n.label == L.SUBQUERY:
                if not self._self_contained(n.children[0], scopes):
                    return False
                continue
            if n.label == L.COLUMN:
                if not _scopes_resolve(scopes, str(n.value)):
                    return False
            stack.extend(n.children)
        return True

    def _stmt_scope(
        self, stmt: Node
    ) -> Optional[tuple[set, set, list[Node]]]:
        """Column names visible inside one statement's own FROM clause.

        Returns ``(bare_names, (qualifier, name) pairs, FROM-subquery
        statements)`` or ``None`` when the scope cannot be derived (unknown
        table, FROM subquery without a statically derivable schema).
        """
        if stmt.label != L.SELECT_STMT:
            return None
        from_clause = next(
            (c for c in stmt.children if c.label == L.FROM_CLAUSE), None
        )
        bare: set = set()
        qualified: set = set()
        substmts: list[Node] = []
        if from_clause is None:
            return bare, qualified, substmts
        stack = list(from_clause.children)
        while stack:
            ref = stack.pop()
            if ref.label == L.JOIN:
                stack.extend(ref.children[:2])
                continue
            if ref.label != L.TABLE_REF:
                return None
            source = ref.children[0]
            alias = None
            if len(ref.children) > 1 and ref.children[1].label == L.ALIAS:
                alias = str(ref.children[1].value)
            if source.label == L.TABLE_NAME:
                name = str(source.value)
                if not self.catalog.has_table(name):
                    return None
                table = self.catalog.table(name)
                qualifier = (alias or table.name).lower()
                for col in table.columns:
                    bare.add(col.name)
                    qualified.add((qualifier, col.name))
            elif source.label == L.SUBQUERY:
                op = SubqueryScanOp(source.children[0], alias)
                self._derive_subquery_schema(op)
                if op.schema is None:
                    return None
                for col in op.schema:
                    bare.add(col.name)
                    if col.qualifier is not None:
                        qualified.add((col.qualifier.lower(), col.name))
                substmts.append(source.children[0])
            else:
                return None
        return bare, qualified, substmts

    # -- projection pruning -------------------------------------------------

    def _referenced_columns(
        self, stmt: Node, select: Node
    ) -> Optional[tuple[set, set]]:
        """Column names referenced anywhere in the statement.

        Returns ``(bare_names, qualified_pairs)`` where ``qualified_pairs``
        holds lowercase ``(qualifier, name)`` tuples, or ``None`` when a bare
        ``*`` projection forces every column to be materialised.  The walk
        includes subqueries, so correlated references keep their columns.
        """
        for item in select.children:
            expr = item.children[0]
            if expr.label == L.STAR and expr.value in ("*", None):
                return None
        bare: set = set()
        qualified: set = set()
        for node in stmt.walk():
            if node.label != L.COLUMN:
                continue
            name = str(node.value)
            if "." in name:
                q, b = name.split(".", 1)
                qualified.add((q.lower(), b))
            else:
                bare.add(name)
        return bare, qualified

    # -- FROM planning -------------------------------------------------------

    def _plan_from(
        self,
        from_clause: Node,
        predicate: Optional[Node],
        referenced: Optional[tuple[set, set]],
        reorder_ok: bool = False,
    ) -> tuple[PlanOp, Optional[Node]]:
        items = [self._plan_table_ref(ref, referenced) for ref in from_clause.children]
        schemas = [op.schema for op in items]
        known = all(s is not None for s in schemas)

        conjuncts = _split_conjuncts(predicate) if predicate is not None else []
        pushed: list[list[Node]] = [[] for _ in items]
        join_keys: list[tuple[int, int, int, int]] = []  # (i, li, j, lj), i < j
        residual: list[Node] = []

        if known and len(items) >= 1:
            for conj in conjuncts:
                target = self._classify_conjunct(conj, schemas)
                if target is None:
                    residual.append(conj)
                elif isinstance(target, int):
                    pushed[target].append(conj)
                    self.stats.predicates_pushed += 1
                else:
                    join_keys.append(target)
        else:
            residual = list(conjuncts)

        # attach single-item predicates directly above their item; predicates
        # over a FROM subquery are rewritten into the subquery's own WHERE
        # when its output columns provably map to base attributes
        for idx, preds in enumerate(pushed):
            if not preds:
                continue
            op = items[idx]
            if isinstance(op, ScanOp):
                op.predicates.extend(preds)
            elif isinstance(op, SubqueryScanOp):
                leftover = self._push_into_subquery(op, preds)
                if leftover:
                    items[idx] = FilterOp(op, leftover, schema=op.schema)
            else:
                items[idx] = FilterOp(op, preds, schema=op.schema)

        order = list(range(len(items)))
        reordered = None
        if (
            reorder_ok
            and known
            and len(items) >= 2
            and join_keys
            and all(ref.label == L.TABLE_REF for ref in from_clause.children)
        ):
            reordered = self._reorder(items, join_keys)
        if reordered is not None:
            order = reordered
            self.stats.joins_reordered += 1

        acc, offsets = self._build_chain(items, schemas, join_keys, order, known)
        if order != list(range(len(items))):
            # restore the original FROM-order column layout above the joins
            indices = [
                offsets[item] + c
                for item in range(len(items))
                for c in range(len(schemas[item] or []))
            ]
            acc = MapOp(
                acc,
                indices,
                schema=[col for s in schemas for col in (s or [])],
                estimated_rows=acc.estimated_rows,
            )

        residual_node = _combine_conjuncts(residual)
        return acc, residual_node

    def _build_chain(
        self,
        items: list[PlanOp],
        schemas: list[Optional[list[RelColumn]]],
        join_keys: list[tuple[int, int, int, int]],
        order: list[int],
        known: bool,
    ) -> tuple[PlanOp, dict[int, int]]:
        """Left-deep join chain over ``items`` taken in ``order``.

        Returns the chain root and each item's column offset in the chain's
        combined schema.  A join key attaches as soon as both of its
        endpoints are placed, so any permutation uses every key.
        """
        first = order[0]
        acc = items[first]
        offsets = {first: 0}
        width = len(schemas[first] or [])
        for j in order[1:]:
            keys: list[tuple[int, int]] = []
            for (a, la, b, lb) in join_keys:
                if b == j and a in offsets:
                    keys.append((offsets[a] + la, lb))
                elif a == j and b in offsets:
                    keys.append((offsets[b] + lb, la))
            right = items[j]
            if keys and known:
                left_idx = [k[0] for k in keys]
                right_idx = [k[1] for k in keys]
                acc = HashJoinOp(
                    acc,
                    right,
                    left_idx,
                    right_idx,
                    "INNER",
                    schema=(acc.schema or []) + (right.schema or []),
                    estimated_rows=self._estimate_join(acc, right, left_idx, right_idx),
                )
                self.stats.hash_joins_planned += 1
            else:
                acc = CrossJoinOp(
                    acc,
                    right,
                    schema=(acc.schema + right.schema) if known else None,
                    estimated_rows=acc.estimated_rows * right.estimated_rows,
                )
                self.stats.cross_joins_planned += 1
            offsets[j] = width
            width += len(schemas[j] or [])
        return acc, offsets

    @staticmethod
    def _reorder(
        items: list[PlanOp], join_keys: list[tuple[int, int, int, int]]
    ) -> Optional[list[int]]:
        """Greedy smallest-input-first join order, or ``None`` to keep FROM order.

        Starts from the smallest estimated input that participates in a join
        key and repeatedly attaches the smallest item joinable to the placed
        set (falling back to the smallest remaining item when none connect).
        Smaller inputs earlier means smaller hash-join build sides and
        smaller intermediate results.
        """
        n = len(items)
        est = [op.estimated_rows for op in items]
        partners: dict[int, set[int]] = {i: set() for i in range(n)}
        for (a, _la, b, _lb) in join_keys:
            partners[a].add(b)
            partners[b].add(a)
        connected = [i for i in range(n) if partners[i]]
        if not connected:
            return None
        start = min(connected, key=lambda k: (est[k], k))
        order = [start]
        placed = {start}
        while len(order) < n:
            candidates = [
                k for k in range(n) if k not in placed and partners[k] & placed
            ]
            if not candidates:
                candidates = [k for k in range(n) if k not in placed]
            nxt = min(candidates, key=lambda k: (est[k], k))
            order.append(nxt)
            placed.add(nxt)
        if order == list(range(n)):
            return None
        return order

    def _plan_table_ref(
        self, ref: Node, referenced: Optional[tuple[set, set]]
    ) -> PlanOp:
        if ref.label == L.JOIN:
            return self._plan_join(ref, referenced)
        if ref.label != L.TABLE_REF:
            raise PlanningError(f"unexpected FROM element {ref.label!r}")
        source = ref.children[0]
        alias = None
        if len(ref.children) > 1 and ref.children[1].label == L.ALIAS:
            alias = str(ref.children[1].value)

        if source.label == L.TABLE_NAME:
            return self._plan_scan(str(source.value), alias, referenced)
        if source.label == L.SUBQUERY:
            op = SubqueryScanOp(source.children[0], alias)
            self._derive_subquery_schema(op)
            return op
        raise PlanningError(f"unsupported table reference {source.label!r}")

    def _derive_subquery_schema(self, op: SubqueryScanOp) -> None:
        """Statically derive the output schema of a simple FROM subquery.

        Succeeds for a (optionally DISTINCT) projection of columns, ``*`` and
        aggregate calls over a single base table — including GROUP BY /
        HAVING shapes — exactly the forms whose runtime ``ResultTable``
        schema the planner can predict, column for column.  On success the
        subquery item participates in predicate classification and hash
        joins like a base scan.

        ``pushdown_map`` only exposes output columns whose inner filter
        provably commutes with the subquery: every plain column for
        ungrouped subqueries, but *only the GROUP BY key columns* for
        grouped ones — filtering rows on a group key before grouping removes
        exactly the groups whose key fails, while filtering on any other
        column would change group membership (and aggregate outputs cannot
        be filtered below the grouping at all).
        """
        stmt = op.stmt
        if stmt.label != L.SELECT_STMT:
            return
        clauses = {c.label: c for c in stmt.children}
        select = clauses.get(L.SELECT_CLAUSE)
        from_clause = clauses.get(L.FROM_CLAUSE)
        if select is None or from_clause is None or len(from_clause.children) != 1:
            return
        ref = from_clause.children[0]
        if ref.label != L.TABLE_REF or ref.children[0].label != L.TABLE_NAME:
            return
        table_name = str(ref.children[0].value)
        if not self.catalog.has_table(table_name):
            return
        table = self.catalog.table(table_name)
        inner_alias = None
        if len(ref.children) > 1 and ref.children[1].label == L.ALIAS:
            inner_alias = str(ref.children[1].value)
        inner_qualifier = inner_alias or table.name

        groupby = clauses.get(L.GROUPBY_CLAUSE)
        having = clauses.get(L.HAVING_CLAUSE)
        grouped = (
            groupby is not None or having is not None or contains_aggregate(select)
        )
        # plain-column GROUP BY keys: the only outputs whose predicates may
        # be rewritten into the grouped subquery's own WHERE
        group_keys: set[str] = set()
        if groupby is not None:
            for expr in groupby.children:
                key = _table_column(expr, table, inner_qualifier)
                if key is not None:
                    group_keys.add(key)

        # (output name, pushable inner column or None, dtype, source, is_agg)
        out: list[tuple[str, Optional[str], DataType, Optional[str], bool]] = []
        for item in select.children:
            expr = item.children[0]
            item_alias = None
            if len(item.children) > 1 and item.children[1].label == L.ALIAS:
                item_alias = str(item.children[1].value)
            if expr.label == L.STAR and expr.value in ("*", None):
                if item_alias is not None:
                    return
                out.extend(
                    (c.name, c.name, c.dtype, f"{table.name}.{c.name}", False)
                    for c in table.columns
                )
                continue
            if expr.label == L.COLUMN:
                bare = _table_column(expr, table, inner_qualifier)
                if bare is None:
                    return
                col = table.column(bare)
                out.append(
                    (
                        item_alias or bare,
                        bare,
                        col.dtype,
                        f"{table.name}.{col.name}",
                        False,
                    )
                )
                continue
            if expr.label == L.FUNC and is_aggregate(str(expr.value)):
                dtype = self._static_aggregate_type(expr, table, inner_qualifier)
                if dtype is None:
                    return
                base = str(expr.value).removesuffix(" distinct")
                out.append((item_alias or base, None, dtype, None, True))
                continue
            return

        # deduplicate output names exactly like the executor's output schema
        seen: dict[str, int] = {}
        schema: list[RelColumn] = []
        pushdown_map: dict[str, str] = {}
        for out_name, bare, dtype, source, is_agg in out:
            if out_name in seen:
                seen[out_name] += 1
                out_name = f"{out_name}_{seen[out_name]}"
            else:
                seen[out_name] = 0
            schema.append(
                RelColumn(
                    name=out_name,
                    qualifier=op.alias,
                    dtype=dtype,
                    source=source,
                    is_aggregate=is_agg,
                )
            )
            if bare is not None and (not grouped or bare in group_keys):
                pushdown_map[out_name] = f"{inner_qualifier}.{bare}"

        op.schema = schema
        op.estimated_rows = self._estimate_subquery_rows(
            table, inner_qualifier, grouped, groupby
        )
        op.pushdown_map = pushdown_map
        op.pushdown_safe = clauses.get(L.LIMIT_CLAUSE) is None

    def _static_aggregate_type(
        self, expr: Node, table, qualifier: str
    ) -> Optional[DataType]:
        """Plan-time output type of an aggregate call, or ``None`` to bail.

        Supports ``count(*)`` and aggregates over a plain column of the
        subquery's table; anything else (computed arguments, unresolvable
        columns) leaves the schema underivable so the item conservatively
        keeps its run-time-only schema.
        """
        base = str(expr.value).removesuffix(" distinct")
        arg_dtype: Optional[DataType] = None
        if expr.children and expr.children[0].label != L.STAR:
            arg = expr.children[0]
            if arg.label != L.COLUMN:
                return None
            bare = _table_column(arg, table, qualifier)
            if bare is None:
                return None
            arg_dtype = table.column(bare).dtype
        elif base in ("sum", "min", "max", "avg") and not expr.children:
            return None
        if base in ("sum", "min", "max") and arg_dtype is None:
            return None
        return aggregate_result_type(str(expr.value), arg_dtype)

    def _estimate_subquery_rows(
        self, table, qualifier: str, grouped: bool, groupby: Optional[Node]
    ) -> float:
        if not grouped:
            return float(len(table))
        key_distincts: list = []
        for expr in groupby.children if groupby is not None else []:
            bare = _table_column(expr, table, qualifier)
            distinct = None
            if bare is not None:
                try:
                    distinct = self.catalog.statistics(
                        f"{table.name}.{bare}"
                    ).distinct_count
                except Exception:
                    distinct = None
            key_distincts.append(distinct)
        return estimate_group_count(len(table), key_distincts)

    def _push_into_subquery(
        self, op: SubqueryScanOp, preds: list[Node]
    ) -> list[Node]:
        """Rewrite pushable conjuncts into the subquery's own WHERE clause.

        Returns the conjuncts that could not be rewritten (they stay above
        the subquery scan as a FilterOp).  The subquery statement is copied
        before modification so the caller's AST is never mutated.
        """
        if not op.pushdown_safe or not op.pushdown_map:
            return preds
        pushable: list[Node] = []
        leftover: list[Node] = []
        for conj in preds:
            rewritten = self._rewrite_for_subquery(conj, op)
            if rewritten is not None:
                pushable.append(rewritten)
            else:
                leftover.append(conj)
        if not pushable:
            return leftover

        new_stmt = op.stmt.copy()
        where = next(
            (c for c in new_stmt.children if c.label == L.WHERE_CLAUSE), None
        )
        if where is not None:
            where.children[0] = _combine_conjuncts([where.children[0], *pushable])
        else:
            where = Node(L.WHERE_CLAUSE, None, [_combine_conjuncts(pushable)])
            insert_at = 1 + next(
                i
                for i, c in enumerate(new_stmt.children)
                if c.label == L.FROM_CLAUSE
            )
            new_stmt.children.insert(insert_at, where)
        op.stmt = new_stmt
        self.stats.subquery_pushdowns += len(pushable)
        return leftover

    def _rewrite_for_subquery(
        self, conj: Node, op: SubqueryScanOp
    ) -> Optional[Node]:
        """A copy of ``conj`` with output-column references renamed to the
        subquery's base attributes, or ``None`` when any reference does not
        provably map to one."""
        assert op.pushdown_map is not None
        rewritten = conj.copy()
        alias = (op.alias or "").lower()
        for node in rewritten.walk():
            if node.label != L.COLUMN:
                continue
            name = str(node.value)
            bare = name
            if "." in name:
                qualifier, bare = name.split(".", 1)
                if qualifier.lower() != alias:
                    return None
            inner = op.pushdown_map.get(bare)
            if inner is None:
                return None
            node.value = inner
        return rewritten

    def _plan_scan(
        self,
        table_name: str,
        alias: Optional[str],
        referenced: Optional[tuple[set, set]],
    ) -> ScanOp:
        table = self.catalog.table(table_name)
        qualifier = alias or table.name
        keep: Optional[list[int]] = None
        if referenced is not None:
            bare, qualified = referenced
            q = qualifier.lower()
            keep = [
                i
                for i, c in enumerate(table.columns)
                if c.name in bare or (q, c.name) in qualified
            ]
            if len(keep) == len(table.columns):
                keep = None
            else:
                self.stats.columns_pruned += len(table.columns) - len(keep)
        columns = table.columns if keep is None else [table.columns[i] for i in keep]
        schema = [
            RelColumn(
                name=c.name,
                qualifier=qualifier,
                dtype=c.dtype,
                source=f"{table.name}.{c.name}",
            )
            for c in columns
        ]
        return ScanOp(
            table=table.name,
            qualifier=qualifier,
            schema=schema,
            column_indices=keep,
            estimated_rows=float(len(table)),
        )

    def _plan_join(self, join: Node, referenced: Optional[tuple[set, set]]) -> PlanOp:
        left = self._plan_table_ref(join.children[0], referenced)
        right = self._plan_table_ref(join.children[1], referenced)
        condition = join.children[2].children[0]
        join_type = str(join.value or "INNER")

        if left.schema is None or right.schema is None:
            self.stats.nested_loop_joins_planned += 1
            return NestedLoopJoinOp(left, right, condition, join_type)

        keys: list[tuple[int, int]] = []
        residual: list[Node] = []
        for conj in _split_conjuncts(condition):
            key = self._equi_key(conj, left.schema, right.schema)
            if key is not None:
                keys.append(key)
            else:
                residual.append(conj)
        if not keys:
            self.stats.nested_loop_joins_planned += 1
            return NestedLoopJoinOp(
                left, right, condition, join_type,
                schema=left.schema + right.schema,
                estimated_rows=left.estimated_rows * right.estimated_rows,
            )
        left_idx = [k[0] for k in keys]
        right_idx = [k[1] for k in keys]
        self.stats.hash_joins_planned += 1
        return HashJoinOp(
            left,
            right,
            left_idx,
            right_idx,
            join_type,
            residual=_combine_conjuncts(residual),
            schema=left.schema + right.schema,
            estimated_rows=self._estimate_join(left, right, left_idx, right_idx),
        )

    # -- conjunct classification ---------------------------------------------

    def _classify_conjunct(
        self, conj: Node, schemas: Sequence[Optional[list[RelColumn]]]
    ) -> Optional[object]:
        """Classify one WHERE conjunct against the top-level FROM items.

        Returns an item index (pushable single-item predicate), an
        ``(i, li, j, lj)`` join-key tuple with ``i < j`` (hash-joinable
        equality), or ``None`` (residual).
        """
        columns = _collect_columns(conj)
        if columns is None or not columns:
            return None
        located = []
        for name in columns:
            loc = _resolve_item(schemas, name)
            if loc is None:
                return None  # outer / unknown reference: keep at the top
            located.append(loc)
        item_indices = {item for item, _ in located}
        if len(item_indices) == 1:
            return located[0][0]
        # two-item equality between plain columns → hash-join key candidate
        if (
            len(item_indices) == 2
            and conj.label == L.BINOP
            and conj.value == "="
            and len(conj.children) == 2
            and conj.children[0].label == L.COLUMN
            and conj.children[1].label == L.COLUMN
        ):
            (i, li), (j, lj) = located[0], located[1]
            if i != j and _hash_compatible(
                schemas[i][li].dtype, schemas[j][lj].dtype
            ):
                if i < j:
                    return (i, li, j, lj)
                return (j, lj, i, li)
        return None

    def _equi_key(
        self, conj: Node, left: list[RelColumn], right: list[RelColumn]
    ) -> Optional[tuple[int, int]]:
        """``(left_idx, right_idx)`` when the conjunct is a hashable equality."""
        if not (
            conj.label == L.BINOP
            and conj.value == "="
            and len(conj.children) == 2
            and conj.children[0].label == L.COLUMN
            and conj.children[1].label == L.COLUMN
        ):
            return None
        # resolve over the combined schema exactly as the interpreter's
        # first-match lookup over the cross-joined relation would
        combined = left + right
        a = _resolve_in_schema(combined, str(conj.children[0].value))
        b = _resolve_in_schema(combined, str(conj.children[1].value))
        if a is None or b is None:
            return None
        if a < len(left) and b >= len(left):
            li, ri = a, b - len(left)
        elif b < len(left) and a >= len(left):
            li, ri = b, a - len(left)
        else:
            return None  # both bind to the same side: not a join predicate
        if not _hash_compatible(left[li].dtype, right[ri].dtype):
            return None
        return li, ri

    # -- estimates -----------------------------------------------------------

    def _estimate_join(
        self,
        left: PlanOp,
        right: PlanOp,
        left_idx: list[int],
        right_idx: list[int],
    ) -> float:
        left_distinct = self._key_distinct(left, left_idx)
        right_distinct = self._key_distinct(right, right_idx)
        return estimate_equi_join_rows(
            int(left.estimated_rows), int(right.estimated_rows),
            left_distinct, right_distinct,
        )

    def _key_distinct(self, op: PlanOp, key_idx: list[int]) -> Optional[int]:
        if not isinstance(op, ScanOp) or len(key_idx) != 1 or op.schema is None:
            return None
        col = op.schema[key_idx[0]]
        if col.source is None:
            return None
        try:
            return self.catalog.statistics(col.source).distinct_count
        except Exception:
            return None


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _table_column(expr: Node, table, qualifier: str) -> Optional[str]:
    """The bare column name when ``expr`` is a plain reference to ``table``.

    Accepts an unqualified name or one qualified by the item's alias / table
    name (case-insensitively); returns ``None`` for anything else.
    """
    if expr.label != L.COLUMN:
        return None
    name = str(expr.value)
    col_qualifier, bare = None, name
    if "." in name:
        col_qualifier, bare = name.split(".", 1)
    if col_qualifier is not None and col_qualifier.lower() != qualifier.lower():
        return None
    if not table.has_column(bare):
        return None
    return bare


def _iter_join_conditions(from_clause: Node):
    """The ON conditions of a FROM clause's explicit JOIN trees.

    Descends only through the JOIN structure (children 0 and 1), never into
    the conditions themselves — a JOIN inside a subquery in an ON condition
    belongs to that subquery's scope, not this one.
    """
    stack = list(from_clause.children)
    while stack:
        ref = stack.pop()
        if ref.label == L.JOIN:
            stack.extend(ref.children[:2])
            if len(ref.children) > 2:
                yield ref.children[2]


def _scopes_resolve(scopes: tuple, name: str) -> bool:
    """True when a (possibly qualified) column name resolves in any scope.

    Mirrors the executor's chained :class:`Environment` lookup: bare names
    match any column of any scope; qualified names match case-insensitively
    on the qualifier.
    """
    qualifier: Optional[str] = None
    bare = name
    if "." in name:
        qualifier, bare = name.split(".", 1)
        qualifier = qualifier.lower()
    for bares, qualifieds in scopes:
        if qualifier is None:
            if bare in bares:
                return True
        elif (qualifier, bare) in qualifieds:
            return True
    return False


def _split_conjuncts(node: Node) -> list[Node]:
    """Flatten nested AND nodes into a conjunct list."""
    if node.label == L.AND:
        out: list[Node] = []
        for child in node.children:
            out.extend(_split_conjuncts(child))
        return out
    return [node]


def _combine_conjuncts(conjuncts: list[Node]) -> Optional[Node]:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return Node(L.AND, None, conjuncts)


def _collect_columns(node: Node) -> Optional[list[str]]:
    """All column names in a predicate, or ``None`` when it has a subquery.

    Subqueries may contain correlated references into sibling FROM items, so
    predicates containing them are never pushed or turned into join keys.
    """
    columns: list[str] = []
    for n in node.walk():
        if n.label in (L.SUBQUERY, L.IN_QUERY):
            return None
        if n.label == L.COLUMN:
            columns.append(str(n.value))
    return columns


def _resolve_in_schema(schema: list[RelColumn], name: str) -> Optional[int]:
    """First-match column resolution, delegating to ``Relation.find`` so the
    planner's name binding can never drift from the executor's lookup."""
    qualifier: Optional[str] = None
    bare = name
    if "." in name:
        qualifier, bare = name.split(".", 1)
    return Relation(columns=schema).find(bare, qualifier)


def _resolve_item(
    schemas: Sequence[Optional[list[RelColumn]]], name: str
) -> Optional[tuple[int, int]]:
    """Resolve a column over the concatenated item schemas, in item order.

    Mirrors the interpreter's lookup over the cross-joined relation: the
    first matching column (left to right) wins.
    """
    for item, schema in enumerate(schemas):
        if schema is None:
            return None
        idx = _resolve_in_schema(schema, name)
        if idx is not None:
            return item, idx
    return None


def _hash_compatible(a: DataType, b: DataType) -> bool:
    """True when raw-value hashing matches the executor's ``=`` semantics.

    Numeric pairs are safe because Python guarantees ``hash(1) == hash(1.0)``;
    textual pairs compare as strings on both paths.  Mixed numeric / textual
    pairs go through the executor's value coercion, which a hash table cannot
    reproduce, so they fall back to nested-loop evaluation.
    """
    numeric = (DataType.INT, DataType.FLOAT, DataType.BOOL)
    textual = (DataType.STR, DataType.DATE)
    if a in numeric and b in numeric:
        return True
    if a in textual and b in textual:
        return True
    return False


def contains_aggregate(node: Node) -> bool:
    """True when the expression contains an aggregate call of its own.

    Aggregates inside subqueries belong to the subquery.  Shared by the
    planner (grouping-stage detection) and the executor's schema description.
    """
    if node.label == L.SUBQUERY:
        return False
    if node.label == L.FUNC and is_aggregate(str(node.value)):
        return True
    return any(contains_aggregate(c) for c in node.children)
