"""A process-wide compiled-plan cache shared across :class:`Executor` instances.

The MCTS reward loop and the benchmark harnesses build many executors over
the same catalogue and replay the same workload-log queries through each of
them; before this cache every executor recompiled every plan from scratch.
The cache is keyed per *catalogue object* (plans embed column indices and
cardinality estimates, so they are only valid for the catalogue they were
planned against) and, within a catalogue, by ``(statement fingerprint,
planner options)``.

Catalogue entries are held through weak references: dropping the last strong
reference to a catalogue frees its cached plans, and — critically — a new
catalogue allocated at a recycled ``id()`` can never observe stale plans.

The cache is thread-safe (one lock around the LRU bookkeeping) so future
multi-threaded search workers can share it without coordination.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable, Optional

from ..obs import span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .catalog import Catalog
    from .planner import Plan


def plan_key(
    fingerprint: str,
    allow_reorder: bool,
    order_insensitive: bool,
    columnar_subqueries: bool,
) -> tuple:
    """The within-catalogue cache key of one compiled plan.

    Every planner option that changes the *compiled artifact* must appear
    here: ``allow_reorder`` / ``order_insensitive`` change the join order,
    and ``columnar_subqueries`` changes the per-stage subquery gating baked
    into ``Plan.columnar_ok`` / ``Plan.columnar_reason`` — executors with
    different gating settings sharing one cache must never exchange plans
    whose engine routing was decided under the other setting.

    Completeness is enforced statically: the ``cache-key-field`` rule of
    ``repro.analysis`` cross-references the flags ``Executor.__init__``
    forwards into ``Planner(...)`` against this signature and every call
    site, so adding a planner flag without threading it here fails the CI
    ``static-analysis`` gate (dynamic counterpart:
    ``tests/test_planner.py::test_every_planner_flag_partitions_the_plan_cache``).
    """
    return (fingerprint, allow_reorder, order_insensitive, columnar_subqueries)


class PlanCache:
    """LRU fingerprint→plan cache, partitioned by catalogue identity."""

    def __init__(self, max_size_per_catalog: int = 4096) -> None:
        self.max_size = max(1, max_size_per_catalog)
        self._by_catalog: "weakref.WeakKeyDictionary[Catalog, OrderedDict]" = (
            weakref.WeakKeyDictionary()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, catalog: "Catalog", key: Hashable) -> Optional["Plan"]:
        with self._lock:
            plans = self._by_catalog.get(catalog)
            if plans is None:
                self.misses += 1
                return None
            plan = plans.get(key)
            if plan is None:
                self.misses += 1
                return None
            plans.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, catalog: "Catalog", key: Hashable, plan: "Plan") -> None:
        with self._lock:
            plans = self._by_catalog.get(catalog)
            if plans is None:
                plans = OrderedDict()
                self._by_catalog[catalog] = plans
            plans[key] = plan
            plans.move_to_end(key)
            while len(plans) > self.max_size:
                plans.popitem(last=False)

    def clear(self, catalog: Optional["Catalog"] = None) -> None:
        """Drop cached plans for one catalogue, or for all of them."""
        with self._lock:
            if catalog is None:
                self._by_catalog = weakref.WeakKeyDictionary()
            else:
                self._by_catalog.pop(catalog, None)

    def size(self, catalog: Optional["Catalog"] = None) -> int:
        with self._lock:
            if catalog is not None:
                return len(self._by_catalog.get(catalog) or ())
            return sum(len(p) for p in self._by_catalog.values())

    def info(self) -> dict:
        with self._lock:
            return {
                "catalogs": len(self._by_catalog),
                "plans": sum(len(p) for p in self._by_catalog.values()),
                "hits": self.hits,
                "misses": self.misses,
            }

    def export_entries(self, catalog: "Catalog") -> list[tuple]:
        """The catalogue's ``(key, plan)`` pairs, LRU order (for persistence).

        Plans reference tables by *name* and embed only statistics derived
        from the catalogue's data, so entries exported here are valid for —
        and may be :meth:`import_entries`-ed into — any catalogue with the
        same content fingerprint (see :mod:`repro.service.fingerprint`).
        """
        with self._lock:
            plans = self._by_catalog.get(catalog)
            return list(plans.items()) if plans else []

    def import_entries(self, catalog: "Catalog", entries: list[tuple]) -> int:
        """Plant exported entries for a same-fingerprint catalogue.

        Existing keys are kept (the live entry is never older than the
        persisted one); returns the number of entries actually added.
        """
        added = 0
        with span("persist.import_plans", entries=len(entries)):
            with self._lock:
                plans = self._by_catalog.get(catalog)
                if plans is None:
                    plans = OrderedDict()
                    self._by_catalog[catalog] = plans
                for key, plan in entries:
                    if key not in plans:
                        plans[key] = plan
                        added += 1
                while len(plans) > self.max_size:
                    plans.popitem(last=False)
        return added


#: The process-wide cache used by every :class:`Executor` unless a private
#: one is passed in.  All MCTS workers, the interface runtime, and benchmark
#: executors built over the same catalogue reuse one compiled plan set.
SHARED_PLAN_CACHE = PlanCache()
