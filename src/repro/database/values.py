"""Scalar value semantics shared by the row and columnar execution engines.

Comparison coercion, ``LIKE`` matching, arithmetic NULL propagation, and the
NULL-safe sort key all live here so the AST interpreter, the row-based plan
executor, and the vectorized columnar engine evaluate every operator with
*identical* semantics — the columnar↔row equivalence sweep in
``tests/test_planner.py`` relies on this module being the single source of
truth.
"""

from __future__ import annotations

import re


def coerce_pair(left: object, right: object) -> tuple[object, object]:
    """Coerce operands so mixed numeric / textual comparisons behave sanely."""
    if isinstance(left, bool) or isinstance(right, bool):
        return left, right
    if isinstance(left, (int, float)) and isinstance(right, str):
        try:
            return left, float(right)
        except ValueError:
            return str(left), right
    if isinstance(left, str) and isinstance(right, (int, float)):
        try:
            return float(left), right
        except ValueError:
            return left, str(right)
    return left, right


def compare_values(op: str, left: object, right: object) -> bool:
    """SQL comparison with NULL-rejection and mixed-type coercion."""
    if left is None or right is None:
        return False
    left, right = coerce_pair(left, right)
    if op == "=":
        return left == right
    if op in ("<>", "!="):
        return left != right
    if op == ">":
        return left > right
    if op == "<":
        return left < right
    if op == ">=":
        return left >= right
    return left <= right


#: comparison operators handled by :func:`compare_values`
COMPARISON_OPS = frozenset({"=", "<>", "!=", ">", "<", ">=", "<="})


def arith_values(op: str, left: object, right: object) -> object:
    """SQL arithmetic / concatenation with NULL propagation.

    Assumes ``op`` is one of ``+ - * / % ||`` and neither operand is None
    (callers short-circuit NULLs to NULL first, matching the interpreter).
    """
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right if right != 0 else None
    if op == "%":
        return left % right if right != 0 else None
    return f"{left}{right}"  # ||


#: arithmetic / concatenation operators handled by :func:`arith_values`
ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%", "||"})


def like(value: object, pattern: object) -> bool:
    """SQL LIKE with % and _ wildcards (case-insensitive, SQLite style)."""
    if value is None or pattern is None:
        return False
    regex = re.escape(str(pattern)).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, str(value), flags=re.IGNORECASE) is not None


def like_matcher(pattern: object):
    """A compiled ``value → bool`` LIKE matcher for one fixed pattern.

    The columnar engine compiles the pattern once per vector instead of once
    per row; a ``None`` pattern matches nothing, like :func:`like`.
    """
    if pattern is None:
        return lambda value: False
    regex = re.compile(
        re.escape(str(pattern)).replace("%", ".*").replace("_", "."),
        flags=re.IGNORECASE,
    )
    return lambda value: value is not None and regex.fullmatch(str(value)) is not None


def null_safe_key(value: object):
    """Sort key that orders NULLs first and keeps mixed types comparable."""
    if value is None:
        return (0, "", 0)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, "", value)
    return (2, str(value), 0)


def null_vector(n: int) -> list:
    """A typed-NULL padding column of ``n`` SQL NULLs.

    Outer joins pad the unmatched side with one of these per column; the
    column's declared :class:`~repro.database.types.DataType` is carried by
    its ``RelColumn`` schema entry, so padding never changes a column's type —
    only its values.  Kept here so both join implementations build padding
    the same way.
    """
    return [None] * n


def is_null_key(value: object) -> bool:
    """True for join-key components that can never match: NULL and NaN.

    ``=`` returns false for NULL operands and ``nan == nan`` is false, whereas
    a dict lookup would match a NaN key through Python's identity shortcut —
    both hash-join implementations must skip these values on build and probe.
    """
    return value is None or value != value
