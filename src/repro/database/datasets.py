"""Deterministic synthetic datasets matching the paper's evaluation workloads.

The paper evaluates PI2 over the Cars dataset, a flights table, the S&P 500
price history, a covid cases/deaths table, the Kaggle supermarket-sales
dataset and two SDSS tables (``galaxy`` and ``specObj``).  None of these is
redistributable in an offline environment, so this module generates synthetic
tables with the **same schemas, attribute domains and cardinalities**; the
interface-generation search only depends on those properties (schemas,
domains, functional dependencies and result shapes), not on the exact values.

All generators are deterministic (seeded :class:`random.Random`) so tests and
benchmarks are reproducible.
"""

from __future__ import annotations

import datetime as _dt
import math
import random
from typing import Optional

from .catalog import Catalog
from .functions import TODAY
from .table import Table
from .types import Column, DataType

_DEFAULT_SEED = 7


# ---------------------------------------------------------------------------
# individual tables
# ---------------------------------------------------------------------------


def make_t_table(rows: int = 60, seed: int = _DEFAULT_SEED) -> Table:
    """The toy table ``T(p, a, b)`` used by the paper's Section 2 examples."""
    rng = random.Random(seed)
    table = Table(
        "T",
        [
            Column("p", DataType.INT),
            Column("a", DataType.INT),
            Column("b", DataType.INT),
        ],
    )
    for _ in range(rows):
        table.insert((rng.randint(1, 8), rng.randint(1, 5), rng.randint(1, 5)))
    return table


def make_cars_table(rows: int = 200, seed: int = _DEFAULT_SEED) -> Table:
    """Synthetic Cars table: id, hp, mpg, disp, origin (categorical)."""
    rng = random.Random(seed + 1)
    origins = ["USA", "Europe", "Japan"]
    table = Table(
        "Cars",
        [
            Column("id", DataType.INT, primary_key=True),
            Column("hp", DataType.INT),
            Column("mpg", DataType.FLOAT),
            Column("disp", DataType.FLOAT),
            Column("origin", DataType.STR),
        ],
    )
    for i in range(1, rows + 1):
        origin = origins[i % 3]
        hp = rng.randint(45, 230)
        # mpg is negatively correlated with horsepower, like the real dataset
        mpg = round(max(9.0, 46.0 - hp * 0.15 + rng.gauss(0, 3.0)), 1)
        disp = round(hp * 1.9 + rng.gauss(0, 25.0), 1)
        table.insert((i, hp, mpg, disp, origin))
    return table


def make_flights_table(rows: int = 1500, seed: int = _DEFAULT_SEED) -> Table:
    """Synthetic flights table: id, hour, delay, dist."""
    rng = random.Random(seed + 2)
    table = Table(
        "flights",
        [
            Column("id", DataType.INT, primary_key=True),
            Column("hour", DataType.INT),
            Column("delay", DataType.INT),
            Column("dist", DataType.INT),
        ],
    )
    for i in range(1, rows + 1):
        hour = rng.randint(0, 23)
        delay = max(-10, int(rng.gauss(15 + (hour - 12) ** 2 / 12.0, 20)))
        dist = rng.choice([100, 200, 300, 450, 600, 800, 1000, 1500, 2000, 2500])
        dist += rng.randint(-50, 50)
        table.insert((i, hour, delay, dist))
    return table


def make_sp500_table(days: int = 730, seed: int = _DEFAULT_SEED) -> Table:
    """Synthetic S&P 500 price history: date, price (random walk).

    The series always spans 2000-06-01 … 2003-06-01 regardless of how many
    rows are generated (smaller tables sample the range more sparsely), so the
    Abstract workload's date predicates select non-empty subsets at any scale.
    """
    rng = random.Random(seed + 3)
    table = Table(
        "sp500",
        [Column("date", DataType.DATE), Column("price", DataType.FLOAT)],
    )
    start = _dt.date(2000, 6, 1)
    span_days = 1095  # three years
    step = max(1, span_days // max(1, days))
    price = 1450.0
    for i in range(days):
        day = start + _dt.timedelta(days=min(span_days, i * step))
        price = max(600.0, price * (1.0 + rng.gauss(0.0002, 0.012) * step ** 0.5))
        table.insert((day.isoformat(), round(price, 2)))
    return table


def make_covid_table(days: int = 180, seed: int = _DEFAULT_SEED) -> Table:
    """Synthetic covid table: date, state, cases, deaths for four US states."""
    rng = random.Random(seed + 4)
    states = ["CA", "WA", "NY", "TX"]
    base = {"CA": 6000, "WA": 1200, "NY": 4000, "TX": 3500}
    table = Table(
        "covid",
        [
            Column("date", DataType.DATE),
            Column("state", DataType.STR),
            Column("cases", DataType.INT),
            Column("deaths", DataType.INT),
        ],
    )
    start = TODAY - _dt.timedelta(days=days - 1)
    for i in range(days):
        day = start + _dt.timedelta(days=i)
        wave = 1.0 + 0.6 * math.sin(i / 23.0)
        for state in states:
            cases = max(0, int(base[state] * wave + rng.gauss(0, base[state] * 0.08)))
            deaths = max(0, int(cases * 0.013 + rng.gauss(0, 4)))
            table.insert((day.isoformat(), state, cases, deaths))
    return table


def make_sales_table(rows: int = 600, seed: int = _DEFAULT_SEED) -> Table:
    """Synthetic Kaggle supermarket-sales table.

    Schema follows the Kaggle dataset the paper uses: invoice id, date,
    branch (A/B/C), city, product line, and the invoice total.
    """
    rng = random.Random(seed + 5)
    branches = ["A", "B", "C"]
    cities = {"A": "Yangon", "B": "Mandalay", "C": "Naypyitaw"}
    products = [
        "Health and beauty",
        "Electronics",
        "Lifestyle",
        "Food and beverages",
        "Sports and travel",
        "Home and lifestyle",
    ]
    table = Table(
        "sales",
        [
            Column("invoice", DataType.INT, primary_key=True),
            Column("date", DataType.DATE),
            Column("branch", DataType.STR),
            Column("city", DataType.STR),
            Column("product", DataType.STR),
            Column("total", DataType.FLOAT),
        ],
    )
    start = _dt.date(2019, 1, 1)
    for i in range(1, rows + 1):
        branch = rng.choice(branches)
        day = start + _dt.timedelta(days=rng.randint(0, 89))
        product = rng.choice(products)
        total = round(rng.uniform(15.0, 1050.0), 2)
        table.insert((i, day.isoformat(), branch, cities[branch], product, total))
    return table


def make_sdss_tables(
    rows: int = 240, seed: int = _DEFAULT_SEED
) -> tuple[Table, Table]:
    """Synthetic SDSS ``galaxy`` and ``specObj`` tables.

    Domains follow the paper's Listing 5: right ascension around 213-214,
    declination around -1..0, redshift ``z`` around 0.13-0.15, and the
    ``u,g,r,i,z`` magnitude bands.
    """
    rng = random.Random(seed + 6)
    galaxy = Table(
        "galaxy",
        [
            Column("objID", DataType.INT, primary_key=True),
            Column("u", DataType.FLOAT),
            Column("g", DataType.FLOAT),
            Column("r", DataType.FLOAT),
            Column("i", DataType.FLOAT),
            Column("z", DataType.FLOAT),
        ],
    )
    spec = Table(
        "specObj",
        [
            Column("specObjID", DataType.INT, primary_key=True),
            Column("bestObjID", DataType.INT),
            Column("z", DataType.FLOAT),
            Column("ra", DataType.FLOAT),
            Column("dec", DataType.FLOAT),
        ],
    )
    for i in range(1, rows + 1):
        u = round(rng.uniform(16.0, 22.0), 3)
        galaxy.insert(
            (
                i,
                u,
                round(u - rng.uniform(0.5, 1.5), 3),
                round(u - rng.uniform(1.0, 2.5), 3),
                round(u - rng.uniform(1.5, 3.0), 3),
                round(u - rng.uniform(2.0, 3.5), 3),
            )
        )
        spec.insert(
            (
                10_000 + i,
                i,
                round(rng.uniform(0.130, 0.150), 4),
                round(rng.uniform(213.0, 214.2), 4),
                round(rng.uniform(-1.0, 0.0), 4),
            )
        )
    return galaxy, spec


# ---------------------------------------------------------------------------
# catalog assembly
# ---------------------------------------------------------------------------


def standard_catalog(
    seed: int = _DEFAULT_SEED, scale: float = 1.0
) -> Catalog:
    """Build a catalogue containing every table the paper's workloads touch.

    ``scale`` multiplies the default row counts (used by scalability
    experiments to grow or shrink the data volume).
    """

    def n(base: int) -> int:
        return max(10, int(base * scale))

    galaxy, spec = make_sdss_tables(rows=n(240), seed=seed)
    return Catalog(
        [
            make_t_table(rows=n(60), seed=seed),
            make_cars_table(rows=n(200), seed=seed),
            make_flights_table(rows=n(1500), seed=seed),
            make_sp500_table(days=n(730), seed=seed),
            make_covid_table(days=n(180), seed=seed),
            make_sales_table(rows=n(600), seed=seed),
            galaxy,
            spec,
        ]
    )


def small_catalog(seed: int = _DEFAULT_SEED) -> Catalog:
    """A reduced-size catalogue for fast unit tests."""
    return standard_catalog(seed=seed, scale=0.15)
