"""Vectorized (column-major) plan execution.

This module is the columnar half of the execution layer: it runs the same
logical plans as the row-based executor (:mod:`repro.database.executor`) but
operates on whole columns in tight loops instead of per-row tuple indexing.
Base tables already store their data column-major, so scans are zero-copy
column references; pushed-down filters become one selection-index pass per
predicate; hash joins build on the smaller input and gather both sides by
index vectors; grouping evaluates each aggregate argument once over the whole
relation and then slices it per group.

Equivalence contract: for every supported query the columnar engine produces
a ``ResultTable`` identical — columns, dtypes, sources, and *row order* — to
the row-based planned executor and the AST interpreter.  All scalar semantics
(comparison coercion, NULL propagation, LIKE, NaN join keys) are delegated to
:mod:`repro.database.values`, the single source of truth shared with the row
engine.  Joins are fully covered: LEFT / RIGHT hash joins pad unmatched
preserved rows with typed NULL columns after the residual filter, and
non-equi ON conditions run through a block-wise vectorized nested-loop join —
both reproduce the row engine's emission order exactly.  Uncorrelated scalar
and IN subqueries (admitted by the planner's per-stage gating) are executed
once through the owning executor and broadcast as constants / membership
sets.  The rare remainder the vectorized evaluator cannot prove equivalent
(aggregates outside a grouping stage) raises :class:`UnsupportedColumnar`
and the executor falls back to the row-based plan path for that query.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..obs import span
from ..sqlparser import L, Node
from .functions import AGGREGATE_FUNCTIONS, SCALAR_FUNCTIONS, is_aggregate
from .planner import (
    CrossJoinOp,
    FilterOp,
    HashJoinOp,
    MapOp,
    NestedLoopJoinOp,
    Plan,
    PlanOp,
    ScanOp,
    SubqueryScanOp,
    contains_aggregate,
)
from .table import RelColumn, Relation, ResultTable
from .values import (
    ARITHMETIC_OPS,
    COMPARISON_OPS,
    arith_values,
    compare_values,
    is_null_key,
    like,
    like_matcher,
    null_vector,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import Environment, Executor


class UnsupportedColumnar(Exception):
    """Raised when a plan or expression has no vectorized equivalent.

    The executor catches this and re-runs the query on the row-based plan
    path, so raising it is always safe — it costs time, never correctness.
    """


class ColumnarRelation:
    """An intermediate relation stored column-major.

    ``cols`` holds one value list per schema column; ``nrows`` is tracked
    explicitly because zero-column relations (FROM-less selects) still have
    a row count.  Column lists may be shared with base tables or other
    relations — operators must never mutate them in place.
    """

    __slots__ = ("columns", "cols", "nrows")

    def __init__(self, columns: list[RelColumn], cols: list[list], nrows: int) -> None:
        self.columns = columns
        self.cols = cols
        self.nrows = nrows

    def find(self, name: str, qualifier: Optional[str] = None) -> Optional[int]:
        return Relation(columns=self.columns).find(name, qualifier)

    def gather(self, indices: list[int]) -> "ColumnarRelation":
        """A new relation keeping only the given row positions, in order."""
        return ColumnarRelation(
            self.columns,
            [[col[i] for i in indices] for col in self.cols],
            len(indices),
        )


class _LazyCols:
    """Column accessor that gathers base columns through a selection vector
    on first access, caching per column index."""

    __slots__ = ("base", "sel", "cache")

    def __init__(self, base: list[list], sel: list[int]) -> None:
        self.base = base
        self.sel = sel
        self.cache: dict[int, list] = {}

    def __getitem__(self, idx: int) -> list:
        col = self.cache.get(idx)
        if col is None:
            base_col = self.base[idx]
            col = [base_col[i] for i in self.sel]
            self.cache[idx] = col
        return col

    def __len__(self) -> int:
        return len(self.base)


class _SelectionView(ColumnarRelation):
    """A row-selected view of a relation used while chaining filter conjuncts.

    Presents the rows named by ``sel`` without materialising them: columns
    gather lazily, so a predicate that references two of ten columns costs
    two gathers instead of ten.
    """

    def __init__(self, base: ColumnarRelation, sel: list[int]) -> None:
        self.columns = base.columns
        self.cols = _LazyCols(base.cols, sel)
        self.nrows = len(sel)


# vector results are tagged: (True, list_of_n_values) or (False, scalar)
_VECTOR = True
_SCALAR = False


def _broadcast(tagged: tuple, n: int) -> list:
    is_vec, payload = tagged
    return payload if is_vec else [payload] * n


class _Group:
    """One output group: its key, member row indices, and first-row index."""

    __slots__ = ("key", "indices")

    def __init__(self, key: tuple, indices: list[int]) -> None:
        self.key = key
        self.indices = indices

    @property
    def first(self) -> Optional[int]:
        return self.indices[0] if self.indices else None


class ColumnarEngine:
    """Runs compiled plans column-at-a-time on behalf of an :class:`Executor`.

    The engine delegates output-schema description, result finalisation and
    the DISTINCT / ORDER BY / LIMIT stages to the owning executor so the two
    plan paths share one implementation of everything that is not a per-row
    hot loop.
    """

    def __init__(self, executor: "Executor") -> None:
        self.ex = executor

    # -- plan execution ------------------------------------------------------

    def execute_plan(self, plan: Plan, env: Optional["Environment"]) -> ResultTable:
        """Run source → filter → group/project; the executor runs the tail."""
        with span("columnar.execute"):
            return self._execute_plan(plan, env)

    def _execute_plan(self, plan: Plan, env: Optional["Environment"]) -> ResultTable:
        hash_joins = cross_joins = nested_loops = 0

        def run(op: Optional[PlanOp]) -> ColumnarRelation:
            nonlocal hash_joins, cross_joins, nested_loops
            if op is None:
                return ColumnarRelation([], [], 1)  # FROM-less: one empty row
            if isinstance(op, ScanOp):
                table = self.ex.catalog.table(op.table)
                if op.column_indices is None:
                    cols = [table.column_data(i) for i in range(len(table.columns))]
                else:
                    cols = [table.column_data(i) for i in op.column_indices]
                crel = ColumnarRelation(list(op.schema), cols, len(table))
                return self._filter_chain(crel, op.predicates, env)
            if isinstance(op, SubqueryScanOp):
                sub = self.ex.execute(op.stmt, env, _nested=True)
                columns = [
                    RelColumn(c.name, op.alias, c.dtype, c.source, c.is_aggregate)
                    for c in sub.columns
                ]
                cols = [sub.column_data(i) for i in range(len(sub.columns))]
                return ColumnarRelation(columns, cols, len(sub))
            if isinstance(op, FilterOp):
                crel = run(op.child)
                return self._filter_chain(crel, op.predicates, env)
            if isinstance(op, MapOp):
                crel = run(op.child)
                return ColumnarRelation(
                    list(op.schema), [crel.cols[i] for i in op.indices], crel.nrows
                )
            if isinstance(op, HashJoinOp):
                crel = self._hash_join(run(op.left), run(op.right), op, env)
                hash_joins += 1
                return crel
            if isinstance(op, NestedLoopJoinOp):
                crel = self._nested_loop_join(run(op.left), run(op.right), op, env)
                nested_loops += 1
                return crel
            if isinstance(op, CrossJoinOp):
                cross_joins += 1
                return self._cross_join(run(op.left), run(op.right))
            raise UnsupportedColumnar(f"operator {type(op).__name__}")

        crel = run(plan.source)
        if plan.residual_where is not None:
            crel = self._filter(crel, plan.residual_where, env)

        if plan.groupby is not None or plan.has_aggregates:
            result = self._grouped(crel, plan.select, plan.groupby, plan.having, env)
        else:
            result = self._project(crel, plan.select, env)

        # flush operator counters only on success so a fallback re-run does
        # not double-count
        self.ex.stats.hash_joins_executed += hash_joins
        self.ex.stats.cross_joins_executed += cross_joins
        self.ex.stats.nested_loop_joins_columnar += nested_loops
        return result

    # -- operators -----------------------------------------------------------

    def _filter(
        self,
        crel: ColumnarRelation,
        predicate: Node,
        env: Optional["Environment"],
    ) -> ColumnarRelation:
        mask = self._eval(predicate, crel, env)
        if mask[0] is _SCALAR:
            if mask[1]:
                return crel
            return ColumnarRelation(crel.columns, [[] for _ in crel.cols], 0)
        keep = [i for i, v in enumerate(mask[1]) if v]
        if len(keep) == crel.nrows:
            return crel
        return crel.gather(keep)

    def _filter_chain(
        self,
        crel: ColumnarRelation,
        predicates: list[Node],
        env: Optional["Environment"],
    ) -> ColumnarRelation:
        """Apply pushed conjuncts over one shared selection-index vector.

        Instead of gathering every column after each predicate, later
        predicates evaluate against a lazily-gathered *view* of the surviving
        rows — only the columns a predicate actually references are gathered
        — and the full relation is gathered exactly once after the last
        predicate.  ``PlanStats.filter_gathers_saved`` counts the per-column
        gathers the gather-per-predicate strategy would have performed on top
        of this one.
        """
        if len(predicates) <= 1:
            for pred in predicates:
                crel = self._filter(crel, pred, env)
            return crel

        ncols = len(crel.cols)
        sel: Optional[list[int]] = None
        view: ColumnarRelation = crel  # rebuilt only when the selection changes
        baseline_gathers = 0  # column gathers of the per-predicate strategy
        actual_gathers = 0

        def view_gathers() -> int:
            return len(view.cols.cache) if view is not crel else 0

        for pred in predicates:
            mask = self._eval(pred, view, env)
            if mask[0] is _SCALAR:
                if mask[1]:
                    continue
                self.ex.stats.filter_gathers_saved += max(
                    0, baseline_gathers - actual_gathers - view_gathers()
                )
                return ColumnarRelation(crel.columns, [[] for _ in crel.cols], 0)
            keep = [i for i, v in enumerate(mask[1]) if v]
            if len(keep) == view.nrows:
                continue  # nothing dropped: selection vector and view unchanged
            baseline_gathers += ncols
            actual_gathers += view_gathers()
            sel = keep if sel is None else [sel[i] for i in keep]
            view = _SelectionView(crel, sel)

        if sel is None:
            return crel
        actual_gathers += view_gathers() + ncols
        self.ex.stats.filter_gathers_saved += max(0, baseline_gathers - actual_gathers)
        return crel.gather(sel)

    def _hash_join(
        self,
        left: ColumnarRelation,
        right: ColumnarRelation,
        op: HashJoinOp,
        env: Optional["Environment"],
    ) -> ColumnarRelation:
        """Order-preserving hash join that builds on the smaller input.

        Output row order is always left-major (left rows in order, each with
        its right matches in right-row order) — identical to the interpreter's
        cross-join + filter — regardless of which side the hash table is built
        on, so build-side selection is purely a cost decision.
        """
        lk, rk = op.left_key_idx, op.right_key_idx
        if len(lk) == 1:
            lkeys, rkeys = left.cols[lk[0]], right.cols[rk[0]]
        else:
            lkeys = list(zip(*(left.cols[i] for i in lk)))
            rkeys = list(zip(*(right.cols[i] for i in rk)))
        multi = len(lk) > 1

        out_l: list[int] = []
        out_r: list[int] = []
        if left.nrows <= right.nrows:
            # build on the (smaller) left, probe right, buffer matches so the
            # emission order stays left-major
            buckets: dict = {}
            for i, key in enumerate(lkeys):
                if _key_is_null(key, multi):
                    continue
                buckets.setdefault(key, []).append(i)
            matches: dict[int, list[int]] = {}
            for j, key in enumerate(rkeys):
                if _key_is_null(key, multi):
                    continue
                hit = buckets.get(key)
                if hit:
                    for i in hit:
                        matches.setdefault(i, []).append(j)
            for i in sorted(matches):
                js = matches[i]
                out_l.extend([i] * len(js))
                out_r.extend(js)
        else:
            # classic build-right / probe-left
            buckets = {}
            for j, key in enumerate(rkeys):
                if _key_is_null(key, multi):
                    continue
                buckets.setdefault(key, []).append(j)
            for i, key in enumerate(lkeys):
                if _key_is_null(key, multi):
                    continue
                hit = buckets.get(key)
                if hit:
                    out_l.extend([i] * len(hit))
                    out_r.extend(hit)

        cols = [[col[i] for i in out_l] for col in left.cols]
        cols += [[col[j] for j in out_r] for col in right.cols]
        joined = ColumnarRelation(left.columns + right.columns, cols, len(out_l))
        if op.residual is not None:
            joined = self._filter(joined, op.residual, env)
        return self._apply_outer_padding(left, right, joined, op.join_type)

    #: target cross-product rows materialised per nested-loop block; bounds
    #: peak memory while keeping each vectorized predicate pass long enough
    #: to amortise expression-dispatch overhead
    _NLJ_BLOCK = 4096

    def _nested_loop_join(
        self,
        left: ColumnarRelation,
        right: ColumnarRelation,
        op: NestedLoopJoinOp,
        env: Optional["Environment"],
    ) -> ColumnarRelation:
        """Block-wise vectorized nested-loop join (non-equi ON conditions).

        Materialises the cross product a block of left rows at a time,
        evaluates the ON condition once per block over the block's column
        slices (so comparisons run through the vector fast paths instead of
        a per-row environment), and gathers the surviving ``(left, right)``
        index pairs.  Emission order is left-major — identical to the row
        engine's cross-join + filter — and LEFT / RIGHT padding appends the
        unmatched preserved rows afterwards, exactly like the row engine.
        """
        nl, nr = left.nrows, right.nrows
        columns = left.columns + right.columns
        out_l: list[int] = []
        out_r: list[int] = []
        if op.condition is None:
            for i in range(nl):
                out_l.extend([i] * nr)
                out_r.extend(range(nr))
        elif nr > 0:
            block = max(1, self._NLJ_BLOCK // nr)
            right_template = [col * block for col in right.cols]
            for start in range(0, nl, block):
                stop = min(start + block, nl)
                b = stop - start
                cols = [
                    [v for v in col[start:stop] for _ in range(nr)]
                    for col in left.cols
                ]
                if b == block:
                    cols += right_template
                else:
                    cols += [col * b for col in right.cols]
                brel = ColumnarRelation(columns, cols, b * nr)
                mask = self._eval(op.condition, brel, env)
                if mask[0] is _SCALAR:
                    if mask[1]:
                        for i in range(start, stop):
                            out_l.extend([i] * nr)
                            out_r.extend(range(nr))
                    continue
                for pos, keep in enumerate(mask[1]):
                    if keep:
                        out_l.append(start + pos // nr)
                        out_r.append(pos % nr)
        cols = [[col[i] for i in out_l] for col in left.cols]
        cols += [[col[j] for j in out_r] for col in right.cols]
        joined = ColumnarRelation(columns, cols, len(out_l))
        return self._apply_outer_padding(left, right, joined, op.join_type)

    def _apply_outer_padding(
        self,
        left: ColumnarRelation,
        right: ColumnarRelation,
        joined: ColumnarRelation,
        join_type: str,
    ) -> ColumnarRelation:
        """Route a filtered join result through LEFT / RIGHT padding."""
        if join_type == "LEFT":
            return self._pad_outer(left, right, joined, left_side=True)
        if join_type == "RIGHT":
            return self._pad_outer(left, right, joined, left_side=False)
        return joined

    @staticmethod
    def _pad_outer(
        left: ColumnarRelation,
        right: ColumnarRelation,
        joined: ColumnarRelation,
        left_side: bool,
    ) -> ColumnarRelation:
        """Append NULL-padded unmatched preserved rows below a filtered join.

        Mirrors the row engine's :meth:`Executor._pad_outer` exactly,
        including its *value-tuple* matching: a preserved row counts as
        matched when any surviving join row carries the same value tuple on
        the preserved side (so duplicate rows are padded — or not — together,
        and NaN components compare by object identity on both engines, which
        agree because both gather the very same stored value objects).
        """
        preserved = left if left_side else right
        offset = 0 if left_side else len(left.columns)
        width = len(preserved.columns)
        matched_cols = [joined.cols[offset + c] for c in range(width)]
        matched = set()
        for i in range(joined.nrows):
            matched.add(tuple(col[i] for col in matched_cols))
        pad = [
            i
            for i in range(preserved.nrows)
            if tuple(col[i] for col in preserved.cols) not in matched
        ]
        if not pad:
            return joined
        nulls = null_vector(len(pad))
        cols = []
        for c in range(len(joined.cols)):
            if offset <= c < offset + width:
                pcol = preserved.cols[c - offset]
                cols.append(joined.cols[c] + [pcol[i] for i in pad])
            else:
                cols.append(joined.cols[c] + nulls)
        return ColumnarRelation(joined.columns, cols, joined.nrows + len(pad))

    @staticmethod
    def _cross_join(
        left: ColumnarRelation, right: ColumnarRelation
    ) -> ColumnarRelation:
        nl, nr = left.nrows, right.nrows
        cols = [[v for v in col for _ in range(nr)] for col in left.cols]
        cols += [col * nl for col in right.cols]
        return ColumnarRelation(left.columns + right.columns, cols, nl * nr)

    # -- projection ----------------------------------------------------------

    def _project(
        self,
        crel: ColumnarRelation,
        select: Node,
        env: Optional["Environment"],
    ) -> ResultTable:
        relation = Relation(columns=crel.columns)
        out_columns = self.ex._output_columns(relation, select)
        n = crel.nrows
        vectors = [
            _broadcast(self._eval(item.children[0], crel, env), n)
            for item in self.ex._expanded_select_items(relation, select)
        ]
        # a plain column projection returns the relation's own vector, which
        # for an unfiltered scan is the base table's storage; copy so results
        # stay a snapshot (tables are append-only but results may be cached)
        shared = set(map(id, crel.cols))
        vectors = [list(v) if id(v) in shared else v for v in vectors]
        return self.ex._finalise_columns(out_columns, vectors, n)

    # -- grouping ------------------------------------------------------------

    def _grouped(
        self,
        crel: ColumnarRelation,
        select: Node,
        groupby: Optional[Node],
        having: Optional[Node],
        env: Optional["Environment"],
    ) -> ResultTable:
        group_exprs = list(groupby.children) if groupby is not None else []
        n = crel.nrows

        if group_exprs:
            key_vecs = [
                _broadcast(self._eval(e, crel, env), n) for e in group_exprs
            ]
            grouped: dict[tuple, list[int]] = {}
            for i, key in enumerate(zip(*key_vecs)):
                bucket = grouped.get(key)
                if bucket is None:
                    grouped[key] = [i]
                else:
                    bucket.append(i)
            groups = [_Group(k, idx) for k, idx in grouped.items()]
        else:
            # a single group over every row; aggregates over an empty
            # relation still yield one output row
            groups = [_Group((), list(range(n)))]

        if having is not None:
            memo: list = [None]  # lazily-built first-rows relation, shared
            keep = self._eval_per_group(having.children[0], crel, groups, env, memo)
            groups = [g for g, k in zip(groups, keep) if bool(k)]

        relation = Relation(columns=crel.columns)
        out_columns = self.ex._output_columns(relation, select, grouped=True)
        memo = [None]  # HAVING may have dropped groups: rebuild on demand
        vectors = [
            self._eval_per_group(item.children[0], crel, groups, env, memo)
            for item in self.ex._expanded_select_items(relation, select)
        ]
        return self.ex._finalise_columns(out_columns, vectors, len(groups))

    def _eval_per_group(
        self,
        expr: Node,
        crel: ColumnarRelation,
        groups: list[_Group],
        env: Optional["Environment"],
        memo: Optional[list] = None,
    ) -> list:
        """Evaluate one select/HAVING expression to a value per group.

        Aggregate calls slice a single whole-relation argument vector per
        group; non-aggregate subtrees are evaluated against each group's
        first row (matching the row engine's group environment).  ``memo``
        caches the gathered first-rows relation across the select items and
        HAVING subtrees that share one group list.
        """
        label = expr.label
        if label == L.FUNC and is_aggregate(str(expr.value)):
            name = str(expr.value)
            base = name.removesuffix(" distinct")
            distinct = name.endswith(" distinct")
            if expr.children and expr.children[0].label != L.STAR:
                arg = _broadcast(
                    self._eval(expr.children[0], crel, env), crel.nrows
                )
            else:
                arg = None  # count(*) — every row contributes a 1
            fn = AGGREGATE_FUNCTIONS[base]
            out = []
            for g in groups:
                values = [1] * len(g.indices) if arg is None else [
                    arg[i] for i in g.indices
                ]
                if distinct:
                    seen = set()
                    unique = []
                    for v in values:
                        if v not in seen:
                            seen.add(v)
                            unique.append(v)
                    values = unique
                out.append(fn(values))
            return out

        if not contains_aggregate(expr):
            if memo is None:
                memo = [None]
            if memo[0] is None:
                memo[0] = self._first_rows(crel, groups)
            return _broadcast(self._eval(expr, memo[0], env), len(groups))

        # composite expression over aggregates: recurse per node kind
        if label == L.BINOP:
            op = str(expr.value)
            lv = self._eval_per_group(expr.children[0], crel, groups, env, memo)
            rv = self._eval_per_group(expr.children[1], crel, groups, env, memo)
            if op in COMPARISON_OPS:
                return [compare_values(op, a, b) for a, b in zip(lv, rv)]
            if op == "LIKE":
                return [like(a, b) for a, b in zip(lv, rv)]
            if op in ARITHMETIC_OPS:
                return [
                    None if a is None or b is None else arith_values(op, a, b)
                    for a, b in zip(lv, rv)
                ]
            raise UnsupportedColumnar(f"operator {op!r}")
        if label == L.NEG:
            values = self._eval_per_group(expr.children[0], crel, groups, env, memo)
            return [None if v is None else -v for v in values]
        if label == L.AND:
            parts = [
                self._eval_per_group(c, crel, groups, env, memo)
                for c in expr.children
            ]
            return [all(bool(v) for v in vals) for vals in zip(*parts)]
        if label == L.OR:
            parts = [
                self._eval_per_group(c, crel, groups, env, memo)
                for c in expr.children
            ]
            return [any(bool(v) for v in vals) for vals in zip(*parts)]
        if label == L.NOT:
            values = self._eval_per_group(expr.children[0], crel, groups, env, memo)
            return [not bool(v) for v in values]
        if label == L.BETWEEN:
            value, lo, hi = (
                self._eval_per_group(c, crel, groups, env, memo)
                for c in expr.children
            )
            return [
                False if v is None or a is None or b is None else a <= v <= b
                for v, a, b in zip(value, lo, hi)
            ]
        if label == L.IS_NULL:
            values = self._eval_per_group(expr.children[0], crel, groups, env, memo)
            if expr.value == "NOT":
                return [v is not None for v in values]
            return [v is None for v in values]
        if label == L.IN_LIST:
            values = self._eval_per_group(expr.children[0], crel, groups, env, memo)
            options = [
                self._eval_per_group(c, crel, groups, env, memo)
                for c in expr.children[1:]
            ]
            return [
                v in [o[i] for o in options] for i, v in enumerate(values)
            ]
        if label == L.IN_QUERY:
            values = self._eval_per_group(expr.children[0], crel, groups, env, memo)
            sub = self.ex.execute(expr.children[1], env, _nested=True)
            if not sub.columns:
                return [False] * len(groups)
            members = set(row[0] for row in sub.rows)
            return [v in members for v in values]
        if label == L.FUNC and str(expr.value).removesuffix(" distinct") in SCALAR_FUNCTIONS:
            # a stray DISTINCT on a scalar call is ignored, like the row engine
            fn = SCALAR_FUNCTIONS[str(expr.value).removesuffix(" distinct")]
            args = [
                self._eval_per_group(c, crel, groups, env, memo)
                for c in expr.children
            ]
            return [fn(*vals) for vals in zip(*args)] if args else [
                fn() for _ in groups
            ]
        if label == L.CASE:
            return self._case_per_group(expr, crel, groups, env, memo)
        raise UnsupportedColumnar(f"aggregate expression node {label!r}")

    def _case_per_group(
        self,
        expr: Node,
        crel: ColumnarRelation,
        groups: list[_Group],
        env: Optional["Environment"],
        memo: Optional[list] = None,
    ) -> list:
        out: list = [None] * len(groups)
        unset = [True] * len(groups)
        for child in expr.children:
            if child.label == L.WHEN:
                cond, result = child.children
                cond_v = self._eval_per_group(cond, crel, groups, env, memo)
                result_v = self._eval_per_group(result, crel, groups, env, memo)
                for i in range(len(groups)):
                    if unset[i] and bool(cond_v[i]):
                        out[i] = result_v[i]
                        unset[i] = False
            else:
                else_v = self._eval_per_group(child, crel, groups, env, memo)
                for i in range(len(groups)):
                    if unset[i]:
                        out[i] = else_v[i]
                        unset[i] = False
                break
        return out

    @staticmethod
    def _first_rows(crel: ColumnarRelation, groups: list[_Group]) -> ColumnarRelation:
        """One row per group: its first member row (all-NULL for an empty
        group, which only occurs for aggregates over an empty relation)."""
        cols = [
            [col[g.first] if g.first is not None else None for g in groups]
            for col in crel.cols
        ]
        return ColumnarRelation(crel.columns, cols, len(groups))

    # -- vectorized expression evaluation -------------------------------------

    def _eval(
        self,
        node: Node,
        crel: ColumnarRelation,
        env: Optional["Environment"],
    ) -> tuple:
        """Evaluate an expression over a relation.

        Returns ``(True, values)`` for a per-row vector or ``(False, value)``
        for a row-independent scalar (literals, outer-scope references).
        """
        label = node.label

        if label in (L.LITERAL_NUM, L.LITERAL_STR, L.LITERAL_BOOL):
            return (_SCALAR, node.value)
        if label == L.LITERAL_NULL:
            return (_SCALAR, None)
        if label == L.STAR:
            return (_SCALAR, 1)  # count(*) argument
        if label == L.COLUMN:
            name = str(node.value)
            qualifier, bare = None, name
            if "." in name:
                qualifier, bare = name.split(".", 1)
            idx = crel.find(bare, qualifier)
            if idx is not None:
                return (_VECTOR, crel.cols[idx])
            if env is not None:
                found, value = env.lookup(name)
                if found:
                    return (_SCALAR, value)
            from .executor import ExecutionError

            raise ExecutionError(f"unknown column {node.value!r}")
        if label == L.NEG:
            tag, val = self._eval(node.children[0], crel, env)
            if tag is _SCALAR:
                return (_SCALAR, None if val is None else -val)
            return (_VECTOR, [None if v is None else -v for v in val])
        if label == L.AND:
            return self._eval_logical(node, crel, env, want_all=True)
        if label == L.OR:
            return self._eval_logical(node, crel, env, want_all=False)
        if label == L.NOT:
            tag, val = self._eval(node.children[0], crel, env)
            if tag is _SCALAR:
                return (_SCALAR, not bool(val))
            return (_VECTOR, [not bool(v) for v in val])
        if label == L.BINOP:
            return self._eval_binop(node, crel, env)
        if label == L.BETWEEN:
            value, lo, hi = (self._eval(c, crel, env) for c in node.children)
            if value[0] is _SCALAR and lo[0] is _SCALAR and hi[0] is _SCALAR:
                v, a, b = value[1], lo[1], hi[1]
                ok = False if v is None or a is None or b is None else a <= v <= b
                return (_SCALAR, ok)
            n = crel.nrows
            vv, av, bv = _broadcast(value, n), _broadcast(lo, n), _broadcast(hi, n)
            return (
                _VECTOR,
                [
                    False if v is None or a is None or b is None else a <= v <= b
                    for v, a, b in zip(vv, av, bv)
                ],
            )
        if label == L.IN_LIST:
            value = self._eval(node.children[0], crel, env)
            options = [self._eval(c, crel, env) for c in node.children[1:]]
            if all(o[0] is _SCALAR for o in options):
                opts = [o[1] for o in options]
                if value[0] is _SCALAR:
                    return (_SCALAR, value[1] in opts)
                return (_VECTOR, [v in opts for v in value[1]])
            n = crel.nrows
            vv = _broadcast(value, n)
            ov = [_broadcast(o, n) for o in options]
            return (
                _VECTOR,
                [vv[i] in [o[i] for o in ov] for i in range(n)],
            )
        if label == L.IS_NULL:
            tag, val = self._eval(node.children[0], crel, env)
            negate = node.value == "NOT"
            if tag is _SCALAR:
                hit = val is None
                return (_SCALAR, not hit if negate else hit)
            if negate:
                return (_VECTOR, [v is not None for v in val])
            return (_VECTOR, [v is None for v in val])
        if label == L.FUNC:
            return self._eval_func(node, crel, env)
        if label == L.CASE:
            return self._eval_case(node, crel, env)
        if label == L.SUBQUERY:
            # plan-time gating admits only self-contained subqueries here, so
            # one execution stands in for the row engine's per-row re-runs
            sub = self.ex.execute(node, env, _nested=True)
            if not sub.rows:
                return (_SCALAR, None)
            return (_SCALAR, sub.rows[0][0])
        if label == L.IN_QUERY:
            value = self._eval(node.children[0], crel, env)
            sub = self.ex.execute(node.children[1], env, _nested=True)
            if not sub.columns:
                if value[0] is _SCALAR:
                    return (_SCALAR, False)
                return (_VECTOR, [False] * crel.nrows)
            # membership set built once and broadcast over the vector — the
            # row engine rebuilds the identical set per row
            options = set(row[0] for row in sub.rows)
            if value[0] is _SCALAR:
                return (_SCALAR, value[1] in options)
            return (_VECTOR, [v in options for v in value[1]])
        raise UnsupportedColumnar(f"expression node {label!r}")

    def _eval_logical(
        self,
        node: Node,
        crel: ColumnarRelation,
        env: Optional["Environment"],
        want_all: bool,
    ) -> tuple:
        parts = [self._eval(c, crel, env) for c in node.children]
        if all(p[0] is _SCALAR for p in parts):
            values = (bool(p[1]) for p in parts)
            return (_SCALAR, all(values) if want_all else any(values))
        n = crel.nrows
        vecs = [_broadcast(p, n) for p in parts]
        if want_all:
            return (_VECTOR, [all(bool(v[i]) for v in vecs) for i in range(n)])
        return (_VECTOR, [any(bool(v[i]) for v in vecs) for i in range(n)])

    def _eval_binop(
        self,
        node: Node,
        crel: ColumnarRelation,
        env: Optional["Environment"],
    ) -> tuple:
        op = str(node.value)
        left = self._eval(node.children[0], crel, env)
        right = self._eval(node.children[1], crel, env)

        if op in COMPARISON_OPS:
            if left[0] is _SCALAR and right[0] is _SCALAR:
                return (_SCALAR, compare_values(op, left[1], right[1]))
            if left[0] is _VECTOR and right[0] is _SCALAR:
                return (_VECTOR, _compare_vector_scalar(op, left[1], right[1]))
            if left[0] is _SCALAR and right[0] is _VECTOR:
                flipped = {">": "<", "<": ">", ">=": "<=", "<=": ">="}.get(op, op)
                return (_VECTOR, _compare_vector_scalar(flipped, right[1], left[1]))
            return (
                _VECTOR,
                [compare_values(op, a, b) for a, b in zip(left[1], right[1])],
            )
        if op == "LIKE":
            if right[0] is _SCALAR:
                if left[0] is _SCALAR:
                    return (_SCALAR, like(left[1], right[1]))
                match = like_matcher(right[1])
                return (_VECTOR, [match(v) for v in left[1]])
            n = crel.nrows
            lv, rv = _broadcast(left, n), _broadcast(right, n)
            return (_VECTOR, [like(a, b) for a, b in zip(lv, rv)])
        if op in ARITHMETIC_OPS:
            if left[0] is _SCALAR and right[0] is _SCALAR:
                a, b = left[1], right[1]
                return (
                    _SCALAR,
                    None if a is None or b is None else arith_values(op, a, b),
                )
            n = crel.nrows
            lv, rv = _broadcast(left, n), _broadcast(right, n)
            return (
                _VECTOR,
                [
                    None if a is None or b is None else arith_values(op, a, b)
                    for a, b in zip(lv, rv)
                ],
            )
        from .executor import ExecutionError

        raise ExecutionError(f"unsupported operator {op!r}")

    def _eval_func(
        self,
        node: Node,
        crel: ColumnarRelation,
        env: Optional["Environment"],
    ) -> tuple:
        name = str(node.value)
        if is_aggregate(name):
            # aggregates outside a grouping stage (e.g. inside WHERE) keep
            # the row engine's peculiar single-row-group semantics
            raise UnsupportedColumnar("aggregate outside grouping stage")
        base = name.removesuffix(" distinct")
        if base not in SCALAR_FUNCTIONS:
            from .executor import ExecutionError

            raise ExecutionError(f"unknown function {base!r}")
        fn = SCALAR_FUNCTIONS[base]
        args = [self._eval(c, crel, env) for c in node.children]
        if all(a[0] is _SCALAR for a in args):
            return (_SCALAR, fn(*(a[1] for a in args)))
        n = crel.nrows
        vecs = [_broadcast(a, n) for a in args]
        return (_VECTOR, [fn(*vals) for vals in zip(*vecs)])

    def _eval_case(
        self,
        node: Node,
        crel: ColumnarRelation,
        env: Optional["Environment"],
    ) -> tuple:
        n = crel.nrows
        out: list = [None] * n
        unset = [True] * n
        for child in node.children:
            if child.label == L.WHEN:
                cond, result = child.children
                cond_v = _broadcast(self._eval(cond, crel, env), n)
                result_v = _broadcast(self._eval(result, crel, env), n)
                for i in range(n):
                    if unset[i] and bool(cond_v[i]):
                        out[i] = result_v[i]
                        unset[i] = False
            else:
                else_v = _broadcast(self._eval(child, crel, env), n)
                for i in range(n):
                    if unset[i]:
                        out[i] = else_v[i]
                        unset[i] = False
                break
        return (_VECTOR, out)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _key_is_null(key, multi: bool) -> bool:
    """True when a join key contains a NULL or NaN component."""
    if multi:
        return any(is_null_key(v) for v in key)
    return is_null_key(key)


def _compare_vector_scalar(op: str, values: list, scalar: object) -> list[bool]:
    """``[compare_values(op, v, scalar) for v in values]`` with a fast path.

    For ordering comparisons against a non-bool numeric scalar,
    ``coerce_pair`` is the identity on numeric and bool vector elements, so
    the comparison collapses to a raw operator inside one comprehension.  A
    string element (which the slow path would coerce to float) raises
    ``TypeError`` and we redo the whole vector through
    :func:`compare_values`, keeping semantics identical.  Equality gets no
    fast path: ``"3.0" == 3`` is silently False raw but True after coercion,
    so only ``compare_values`` is safe there.
    """
    if scalar is None:
        return [False] * len(values)
    if (
        op in (">", "<", ">=", "<=")
        and isinstance(scalar, (int, float))
        and not isinstance(scalar, bool)
    ):
        try:
            if op == ">":
                return [v is not None and v > scalar for v in values]
            if op == "<":
                return [v is not None and v < scalar for v in values]
            if op == ">=":
                return [v is not None and v >= scalar for v in values]
            return [v is not None and v <= scalar for v in values]
        except TypeError:
            pass
    return [compare_values(op, v, scalar) for v in values]
