"""repro — a from-scratch Python reproduction of PI2 (SIGMOD 2022).

PI2 generates fully functional interactive visualization interfaces from a
small sequence of example SQL analysis queries.  This package implements the
complete system described in the paper — the Difftree structure, the
transformation-rule search (MCTS), visualization / widget / interaction /
layout mapping, the SUPPLE + Fitts' law cost model — plus every substrate it
depends on: a SQL parser, an in-memory relational engine with a catalogue,
synthetic evaluation datasets, a headless interface runtime and the PI1
baseline.

Quickstart::

    from repro import generate_interface

    result = generate_interface([
        "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 "
        "AND mpg BETWEEN 27 AND 38",
        "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 "
        "AND mpg BETWEEN 16 AND 30",
    ])
    print(result.interface.describe())
"""

from .core import (
    PipelineConfig,
    PipelineResult,
    best_static_interface,
    generate_for_workload,
    generate_interface,
)
from .database import Catalog, Executor, standard_catalog
from .difftree import Difftree
from .interface import Interface, InterfaceRuntime, export_html
from .workloads import WORKLOADS, Workload, get_workload

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "Difftree",
    "Executor",
    "Interface",
    "InterfaceRuntime",
    "PipelineConfig",
    "PipelineResult",
    "WORKLOADS",
    "Workload",
    "__version__",
    "best_static_interface",
    "export_html",
    "generate_for_workload",
    "generate_interface",
    "get_workload",
    "standard_catalog",
]
