"""Resolving Difftrees to plain ASTs under choice-node bindings.

Section 3.1 of the paper defines how each choice node resolves when bound to
parameters: ``ANY`` picks one child, ``VAL`` becomes the bound literal,
``MULTI`` repeats its child once per parameterisation and ``SUBSET`` keeps the
chosen children.  Because MULTI/SUBSET/OPT splice a *variable number* of
subtrees into their parent's child list, resolution is implemented as a
recursive expansion that returns lists of nodes which the parent concatenates.

Two binding sources are provided:

* :class:`QueueBindingSource` replays a :class:`Derivation` (produced by the
  matcher) exactly — used to verify that a Difftree expresses an input query.
* :class:`FlatBindingSource` maps ``node_id`` to the *current* parameter of
  each choice node (the interface runtime's state) and falls back to defaults
  for unseen nodes — used when the user manipulates the generated interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..sqlparser.ast_nodes import L, Node, literal_num, literal_str
from .nodes import AnyNode, ChoiceNode, MultiNode, OptNode, SubsetNode, ValNode


class ResolutionError(Exception):
    """Raised when a Difftree cannot be resolved under the given bindings."""


@dataclass
class NodeBinding:
    """The parameter bound to one *instantiation* of a choice node.

    ``param`` meaning per kind:

    * ``ANY``   — integer child index
    * ``OPT``   — bool (present or absent)
    * ``VAL``   — the literal value
    * ``MULTI`` — integer repetition count
    * ``SUBSET``— tuple of selected child indices
    """

    node_id: int
    kind: str
    param: object


@dataclass
class Derivation:
    """A sequence of :class:`NodeBinding` in depth-first expansion order.

    A derivation captures everything needed to resolve a Difftree into one
    concrete AST; the matcher produces one derivation per input query.
    """

    bindings: list[NodeBinding] = field(default_factory=list)

    def params_for(self, node_id: int) -> list[object]:
        """All parameters bound to ``node_id`` across the derivation."""
        return [b.param for b in self.bindings if b.node_id == node_id]

    def __iter__(self):
        return iter(self.bindings)

    def __len__(self) -> int:
        return len(self.bindings)


# ---------------------------------------------------------------------------
# binding sources
# ---------------------------------------------------------------------------


class BindingSource:
    """Provides the parameter for each choice node encountered while resolving."""

    def next_param(self, node: ChoiceNode) -> object:  # pragma: no cover - interface
        raise NotImplementedError


class QueueBindingSource(BindingSource):
    """Replays a derivation in order, validating node identities."""

    def __init__(self, derivation: Derivation) -> None:
        self._queue = list(derivation.bindings)
        self._pos = 0

    def next_param(self, node: ChoiceNode) -> object:
        if self._pos >= len(self._queue):
            raise ResolutionError(
                f"derivation exhausted at choice node {node.label}#{node.node_id}"
            )
        binding = self._queue[self._pos]
        if binding.node_id != node.node_id:
            raise ResolutionError(
                f"derivation mismatch: expected node {binding.node_id}, "
                f"got {node.label}#{node.node_id}"
            )
        self._pos += 1
        return binding.param

    @property
    def fully_consumed(self) -> bool:
        return self._pos == len(self._queue)


class FlatBindingSource(BindingSource):
    """Current interface state: one parameter per choice node id.

    Unbound nodes resolve to a sensible default (first child, first observed
    literal, single repetition, all subset children), which mirrors how the
    generated interface initialises its widgets.  A parameter given as a
    *list* is consumed sequentially across the node's instantiations (needed
    when the node sits below a MULTI and is expanded several times); tuples
    are treated as single parameters (e.g. SUBSET index sets).
    """

    def __init__(self, params: Optional[dict[int, object]] = None) -> None:
        self.params = dict(params or {})
        self._cursors: dict[int, int] = {}

    def set(self, node_id: int, param: object) -> None:
        self.params[node_id] = param
        self._cursors.pop(node_id, None)

    def next_param(self, node: ChoiceNode) -> object:
        if node.node_id not in self.params:
            return default_param(node)
        param = self.params[node.node_id]
        if isinstance(param, list):
            if not param:
                return default_param(node)
            cursor = self._cursors.get(node.node_id, 0)
            self._cursors[node.node_id] = cursor + 1
            return param[cursor % len(param)]
        return param


def default_param(node: ChoiceNode) -> object:
    """The default binding used when a choice node has no explicit parameter."""
    if isinstance(node, ValNode):
        values = node.observed_values()
        return values[0] if values else 0
    if isinstance(node, OptNode):
        return True
    if isinstance(node, MultiNode):
        return 1
    if isinstance(node, SubsetNode):
        return tuple(range(len(node.children)))
    # ANY (including the empty-child OPT form): first non-empty child
    for i, child in enumerate(node.children):
        if child.label != L.EMPTY:
            return i
    return 0


# ---------------------------------------------------------------------------
# resolution
# ---------------------------------------------------------------------------


def resolve(root: Node, source: BindingSource) -> Node:
    """Resolve a Difftree to a plain AST using the given binding source."""
    expanded = _expand(root, source)
    if len(expanded) != 1:
        raise ResolutionError(
            f"root node expanded to {len(expanded)} subtrees; expected exactly 1"
        )
    return expanded[0]


def resolve_with_derivation(root: Node, derivation: Derivation) -> Node:
    """Resolve using an exact derivation (raises if bindings do not line up)."""
    source = QueueBindingSource(derivation)
    result = resolve(root, source)
    if not source.fully_consumed:
        raise ResolutionError("derivation has unused bindings")
    return result


def _expand(node: Node, source: BindingSource) -> list[Node]:
    """Expand a Difftree node into zero or more plain AST nodes."""
    if isinstance(node, ValNode):
        value = source.next_param(node)
        return [_literal_for(value)]

    if isinstance(node, OptNode):
        present = bool(source.next_param(node))
        return _expand(node.child, source) if present else []

    if isinstance(node, MultiNode):
        count = int(source.next_param(node))
        result: list[Node] = []
        for _ in range(max(0, count)):
            result.extend(_expand(node.template, source))
        return result

    if isinstance(node, SubsetNode):
        indices = source.next_param(node)
        chosen = []
        for idx in indices:
            if not 0 <= int(idx) < len(node.children):
                raise ResolutionError(
                    f"SUBSET index {idx} out of range for node #{node.node_id}"
                )
            chosen.extend(_expand(node.children[int(idx)], source))
        return chosen

    if isinstance(node, AnyNode) or (
        isinstance(node, ChoiceNode) and node.label == L.ANY
    ):
        idx = int(source.next_param(node))
        if not 0 <= idx < len(node.children):
            raise ResolutionError(
                f"ANY index {idx} out of range for node #{node.node_id}"
            )
        return _expand(node.children[idx], source)

    if node.label == L.EMPTY:
        return []

    # plain AST node: expand children and splice the results
    new_children: list[Node] = []
    for child in node.children:
        new_children.extend(_expand(child, source))
    return [Node(node.label, node.value, new_children)]


def _literal_for(value: object) -> Node:
    """Build a literal AST node for a bound VAL value."""
    if isinstance(value, Node):
        return value.copy()
    if isinstance(value, bool):
        return Node(L.LITERAL_BOOL, value)
    if isinstance(value, (int, float)):
        return literal_num(value)
    return literal_str(str(value))


def expressible_asts(
    root: Node, max_results: int = 64
) -> Iterable[Node]:
    """Enumerate a bounded number of ASTs expressible by a Difftree.

    Used by tests and property checks: enumeration walks the choice space in
    a deterministic order (first children first, MULTI limited to 1–2
    repetitions, VAL limited to its observed literals).
    """
    results: list[Node] = []

    def enumerate_node(node: Node) -> list[list[Node]]:
        """Return the list of possible expansions (each a list of nodes)."""
        if len(results) >= max_results:
            return []
        if isinstance(node, ValNode):
            values = node.observed_values() or [0]
            return [[_literal_for(v)] for v in values]
        if isinstance(node, OptNode):
            return [e for e in enumerate_node(node.child)] + [[]]
        if isinstance(node, MultiNode):
            singles = enumerate_node(node.template)
            doubles = [a + b for a in singles for b in singles]
            return singles + doubles
        if isinstance(node, SubsetNode):
            options: list[list[Node]] = [[]]
            for child in node.children:
                child_exps = enumerate_node(child)
                options = [
                    prefix + chosen
                    for prefix in options
                    for chosen in ([[]] + child_exps)
                ]
            return options
        if isinstance(node, ChoiceNode):  # ANY
            expansions: list[list[Node]] = []
            for child in node.children:
                expansions.extend(enumerate_node(child))
            return expansions
        if node.label == L.EMPTY:
            return [[]]
        if not node.children:
            return [[node.copy()]]
        child_options = [enumerate_node(c) for c in node.children]
        combos: list[list[Node]] = [[]]
        for options in child_options:
            combos = [
                prefix + option for prefix in combos for option in options
            ][: max_results * 4]
        return [[Node(node.label, node.value, combo)] for combo in combos]

    for expansion in enumerate_node(root):
        if len(expansion) == 1:
            results.append(expansion[0])
            if len(results) >= max_results:
                break
    return results
