"""Matching input-query ASTs against a Difftree to derive query bindings.

Section 3.2.4 of the paper requires, for every dynamic node, the set of
*query bindings* needed for the Difftree to express each input query: these
bindings initialise widgets and are the ground truth for the safety check of
visualization interactions.

Matching is a recursive, backtracking derivation: a Difftree node matches an
AST node (or a *sequence* of sibling AST nodes, because MULTI / SUBSET / OPT
splice a variable number of subtrees into their parent's child list).  The
result of a successful match is a :class:`Derivation` — the bindings, in
depth-first expansion order, under which :func:`repro.difftree.resolve.resolve`
reproduces the query exactly.
"""

from __future__ import annotations

from typing import Optional

from ..sqlparser.ast_nodes import L, Node
from .nodes import (
    AnyNode,
    ChoiceNode,
    MultiNode,
    OptNode,
    SubsetNode,
    ValNode,
)
from .resolve import Derivation, NodeBinding
from .types import PiType

#: Cap on backtracking work per match, to keep worst-case inputs bounded.
#: MULTI / SUBSET-heavy trees can make backtracking expensive; the cap trades
#: a small amount of completeness (a capped match counts as "no match") for a
#: bounded per-query verification cost during the search.
_MAX_STEPS = 40_000


class _Budget:
    """Shared step counter so pathological matches fail fast instead of hanging."""

    __slots__ = ("steps",)

    def __init__(self) -> None:
        self.steps = 0

    def tick(self) -> bool:
        self.steps += 1
        return self.steps <= _MAX_STEPS


def match_query(root: Node, query_ast: Node) -> Optional[Derivation]:
    """Match an input query AST against a Difftree.

    Returns the :class:`Derivation` of bindings (in DFS expansion order) when
    the Difftree expresses the query, or ``None`` otherwise.
    """
    budget = _Budget()
    bindings = _match_node(root, query_ast, budget)
    if bindings is None:
        return None
    return Derivation(bindings)


def expresses(root: Node, query_ast: Node) -> bool:
    """True when the Difftree can express the given query."""
    return match_query(root, query_ast) is not None


# ---------------------------------------------------------------------------
# node-level matching
# ---------------------------------------------------------------------------


def _match_node(dt: Node, ast: Node, budget: _Budget) -> Optional[list[NodeBinding]]:
    """Match one Difftree node against one AST node."""
    if not budget.tick():
        return None

    if isinstance(dt, ValNode):
        return _match_val(dt, ast)

    if isinstance(dt, OptNode):
        sub = _match_node(dt.child, ast, budget)
        if sub is None:
            return None
        return [NodeBinding(dt.node_id, "opt", True), *sub]

    if isinstance(dt, MultiNode):
        # a MULTI matched against a single node is one repetition of its child
        sub = _match_node(dt.template, ast, budget)
        if sub is None:
            return None
        return [NodeBinding(dt.node_id, "multi", 1), *sub]

    if isinstance(dt, SubsetNode):
        for idx, child in enumerate(dt.children):
            sub = _match_node(child, ast, budget)
            if sub is not None:
                return [NodeBinding(dt.node_id, "subset", (idx,)), *sub]
        return None

    if isinstance(dt, ChoiceNode):  # ANY (possibly with an EMPTY child)
        for idx, child in enumerate(dt.children):
            if child.label == L.EMPTY:
                continue
            sub = _match_node(child, ast, budget)
            if sub is not None:
                return [NodeBinding(dt.node_id, "any", idx), *sub]
        return None

    # plain node: labels and values must agree, children match as a sequence
    if dt.label != ast.label or dt.value != ast.value:
        return None
    return _match_sequence(dt.children, list(ast.children), budget)


def _match_val(dt: ValNode, ast: Node) -> Optional[list[NodeBinding]]:
    """A VAL node matches any literal whose type fits the VAL's domain."""
    if ast.label == L.LITERAL_NUM:
        value_type = PiType.num()
        value = ast.value
    elif ast.label == L.LITERAL_STR:
        value_type = PiType.str_()
        value = ast.value
    elif ast.label == L.LITERAL_BOOL:
        value_type = PiType.num()
        value = ast.value
    else:
        return None
    domain = dt.pitype or PiType.str_()
    if not value_type.compatible_with(domain.primitive()):
        return None
    return [NodeBinding(dt.node_id, "val", value)]


# ---------------------------------------------------------------------------
# sequence matching (handles splicing choice nodes)
# ---------------------------------------------------------------------------


def _match_sequence(
    dt_children: list[Node], ast_children: list[Node], budget: _Budget
) -> Optional[list[NodeBinding]]:
    """Match an ordered list of Difftree children against AST children.

    MULTI consumes any number (>=1 when it must, but 0 is allowed only through
    an enclosing OPT), SUBSET consumes an ordered subset, OPT consumes zero or
    one; every other node consumes exactly one AST child.
    """
    if not budget.tick():
        return None

    if not dt_children:
        return [] if not ast_children else None

    head, rest = dt_children[0], dt_children[1:]

    if isinstance(head, MultiNode):
        # try the longest repetition first so greedy lists (e.g. conjunction
        # predicates) match naturally; backtrack to shorter ones when needed
        max_take = len(ast_children)
        for take in range(max_take, 0, -1):
            repetition_bindings: list[NodeBinding] = []
            ok = True
            for item in ast_children[:take]:
                sub = _match_node(head.template, item, budget)
                if sub is None:
                    ok = False
                    break
                repetition_bindings.extend(sub)
            if not ok:
                continue
            tail = _match_sequence(rest, ast_children[take:], budget)
            if tail is not None:
                return [
                    NodeBinding(head.node_id, "multi", take),
                    *repetition_bindings,
                    *tail,
                ]
        return None

    if isinstance(head, SubsetNode):
        return _match_subset(head, rest, ast_children, budget)

    if isinstance(head, OptNode):
        if ast_children:
            sub = _match_node(head.child, ast_children[0], budget)
            if sub is not None:
                tail = _match_sequence(rest, ast_children[1:], budget)
                if tail is not None:
                    return [NodeBinding(head.node_id, "opt", True), *sub, *tail]
        tail = _match_sequence(rest, ast_children, budget)
        if tail is not None:
            return [NodeBinding(head.node_id, "opt", False), *tail]
        return None

    if isinstance(head, AnyNode) and head.is_opt:
        # ANY with an EMPTY child may consume zero children
        if ast_children:
            for idx, child in enumerate(head.children):
                if child.label == L.EMPTY:
                    continue
                sub = _match_node(child, ast_children[0], budget)
                if sub is None:
                    continue
                tail = _match_sequence(rest, ast_children[1:], budget)
                if tail is not None:
                    return [NodeBinding(head.node_id, "any", idx), *sub, *tail]
        empty_idx = next(
            i for i, c in enumerate(head.children) if c.label == L.EMPTY
        )
        tail = _match_sequence(rest, ast_children, budget)
        if tail is not None:
            return [NodeBinding(head.node_id, "any", empty_idx), *tail]
        return None

    # every other node consumes exactly one AST child
    if not ast_children:
        return None
    sub = _match_node(head, ast_children[0], budget)
    if sub is None:
        return None
    tail = _match_sequence(rest, ast_children[1:], budget)
    if tail is None:
        return None
    return [*sub, *tail]


def _match_subset(
    head: SubsetNode,
    rest: list[Node],
    ast_children: list[Node],
    budget: _Budget,
) -> Optional[list[NodeBinding]]:
    """Match a SUBSET head: choose an ordered subset of its children."""

    def recurse(
        child_idx: int, ast_idx: int, chosen: tuple[int, ...], collected: list[NodeBinding]
    ) -> Optional[list[NodeBinding]]:
        if not budget.tick():
            return None
        if child_idx == len(head.children):
            tail = _match_sequence(rest, ast_children[ast_idx:], budget)
            if tail is None:
                return None
            return [NodeBinding(head.node_id, "subset", chosen), *collected, *tail]
        # option 1: include this subset child (it must match the next AST node)
        if ast_idx < len(ast_children):
            sub = _match_node(head.children[child_idx], ast_children[ast_idx], budget)
            if sub is not None:
                result = recurse(
                    child_idx + 1,
                    ast_idx + 1,
                    chosen + (child_idx,),
                    collected + sub,
                )
                if result is not None:
                    return result
        # option 2: skip this subset child
        return recurse(child_idx + 1, ast_idx, chosen, collected)

    return recurse(0, 0, tuple(), [])
