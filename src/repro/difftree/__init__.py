"""Difftrees: choice-node-extended ASTs, schemas, bindings and resolution.

This package implements Section 3 of the paper: the :class:`Difftree`
structure with its four choice-node types, the PI2 type system, node / result
schema inference, query-binding derivation and resolution back to SQL.
"""

from .builder import (
    cluster_by_result_schema,
    initial_difftrees,
    merge_difftrees,
    parse_queries,
    split_difftree,
)
from .match import expresses, match_query
from .nodes import (
    AnyNode,
    ChoiceNode,
    MultiNode,
    OptNode,
    SubsetNode,
    ValNode,
    choice_nodes,
    dynamic_nodes,
    is_choice_node,
    is_dynamic,
    make_choice,
    make_opt,
    next_node_id,
)
from .resolve import (
    Derivation,
    FlatBindingSource,
    NodeBinding,
    QueueBindingSource,
    ResolutionError,
    default_param,
    expressible_asts,
    resolve,
    resolve_with_derivation,
)
from .schema import (
    OptExpr,
    OrExpr,
    RepExpr,
    ResultAttribute,
    ResultSchema,
    SchemaExpr,
    TupleSchema,
    TypeAnnotator,
    TypeExpr,
    WildcardExpr,
    node_schema,
    result_schema_for_queries,
    result_schema_of_result,
    schema_of_types,
    union_result_schemas,
)
from .tree import Difftree
from .types import PiType, union_types

__all__ = [
    "AnyNode",
    "ChoiceNode",
    "Derivation",
    "Difftree",
    "FlatBindingSource",
    "MultiNode",
    "NodeBinding",
    "OptExpr",
    "OptNode",
    "OrExpr",
    "PiType",
    "QueueBindingSource",
    "RepExpr",
    "ResolutionError",
    "ResultAttribute",
    "ResultSchema",
    "SchemaExpr",
    "SubsetNode",
    "TupleSchema",
    "TypeAnnotator",
    "TypeExpr",
    "ValNode",
    "WildcardExpr",
    "choice_nodes",
    "cluster_by_result_schema",
    "default_param",
    "dynamic_nodes",
    "expresses",
    "expressible_asts",
    "initial_difftrees",
    "is_choice_node",
    "is_dynamic",
    "make_choice",
    "make_opt",
    "match_query",
    "merge_difftrees",
    "next_node_id",
    "node_schema",
    "parse_queries",
    "result_schema_for_queries",
    "result_schema_of_result",
    "schema_of_types",
    "split_difftree",
    "union_result_schemas",
    "union_types",
]
