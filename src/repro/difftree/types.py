"""PI2's lightweight type system for Difftree nodes (paper Section 3.2.1).

The paper uses a trivial primitive hierarchy ``AST → str → num`` (``num``
specialises ``str`` which specialises ``AST``) plus *attribute types*: each
database attribute ``T.a`` is a type whose domain is the attribute's value
domain, specialising the primitive type of the attribute.  A type ``t1`` is
compatible with ``t2`` when ``t1``'s domain is a subset of ``t2``'s, and the
union of two types is their least common ancestor in the hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..database.types import DataType

#: Primitive kind names, ordered from most general to most specific.
KIND_AST = "AST"
KIND_STR = "str"
KIND_NUM = "num"

_SPECIALISATION_ORDER = {KIND_AST: 0, KIND_STR: 1, KIND_NUM: 2}


@dataclass(frozen=True)
class PiType:
    """A PI2 type: a primitive kind, optionally specialised to an attribute.

    Attributes:
        kind: one of ``AST``, ``str`` or ``num``.
        attribute: fully qualified attribute name (``table.column``) when the
            type is an attribute type, else ``None``.
    """

    kind: str
    attribute: Optional[str] = None

    # -- constructors -------------------------------------------------------

    @staticmethod
    def ast() -> "PiType":
        return PiType(KIND_AST)

    @staticmethod
    def str_() -> "PiType":
        return PiType(KIND_STR)

    @staticmethod
    def num() -> "PiType":
        return PiType(KIND_NUM)

    @staticmethod
    def attr(qualified: str, dtype: DataType) -> "PiType":
        """An attribute type specialising the primitive matching ``dtype``."""
        kind = KIND_NUM if dtype.is_numeric else KIND_STR
        return PiType(kind, attribute=qualified)

    @staticmethod
    def from_data_type(dtype: DataType) -> "PiType":
        if dtype.is_numeric:
            return PiType.num()
        if dtype in (DataType.STR, DataType.DATE):
            return PiType.str_()
        return PiType.ast()

    # -- predicates -----------------------------------------------------------

    @property
    def is_attribute(self) -> bool:
        return self.attribute is not None

    @property
    def is_numeric(self) -> bool:
        return self.kind == KIND_NUM

    def primitive(self) -> "PiType":
        """The primitive (non-attribute) ancestor of this type."""
        return PiType(self.kind)

    def compatible_with(self, other: "PiType") -> bool:
        """True when this type's domain is a subset of ``other``'s domain.

        Attribute types are subsets of their primitive; ``num ⊆ str ⊆ AST``.
        Two distinct attribute types are only compatible when equal.
        """
        if other.is_attribute:
            return self == other
        return _SPECIALISATION_ORDER[self.kind] >= _SPECIALISATION_ORDER[other.kind]

    def union(self, other: "PiType") -> "PiType":
        """Least common ancestor of the two types (paper: ``T1 ∪ T2``)."""
        if self == other:
            return self
        if self.is_attribute and other.is_attribute:
            # different attributes: keep the union as the shared primitive,
            # remembering both attributes is handled at the schema level
            level = min(
                _SPECIALISATION_ORDER[self.kind], _SPECIALISATION_ORDER[other.kind]
            )
            return PiType(_kind_at(level))
        if self.is_attribute:
            return self.primitive().union(other)
        if other.is_attribute:
            return self.union(other.primitive())
        level = min(
            _SPECIALISATION_ORDER[self.kind], _SPECIALISATION_ORDER[other.kind]
        )
        return PiType(_kind_at(level))

    def __str__(self) -> str:
        return self.attribute if self.attribute else self.kind


def _kind_at(level: int) -> str:
    for kind, lvl in _SPECIALISATION_ORDER.items():
        if lvl == level:
            return kind
    return KIND_AST


def union_types(types: list[PiType]) -> PiType:
    """Union (least common ancestor) of a non-empty list of types."""
    if not types:
        return PiType.ast()
    result = types[0]
    for t in types[1:]:
        result = result.union(t)
    return result
