"""The Difftree container: a choice-node-extended AST plus the queries it
must express, with cached schema / binding analyses.

A :class:`Difftree` compactly represents a set of expressible ASTs.  PI2's
search state is a *list* of Difftrees (each maps to one visualization in the
generated interface); transformation rules produce new Difftree instances, so
all derived data (derivations, bindings, schemas) is cached per instance.
"""

from __future__ import annotations

from typing import Optional

from ..database.catalog import Catalog
from ..database.executor import Executor
from ..sqlparser.ast_nodes import Node
from ..sqlparser.render import to_pseudo_sql
from .match import match_query
from .nodes import ChoiceNode, choice_nodes, dynamic_nodes
from .resolve import Derivation, FlatBindingSource, resolve, resolve_with_derivation
from .schema import (
    ResultSchema,
    SchemaExpr,
    TypeAnnotator,
    node_schema,
    result_schema_for_queries,
)


class Difftree:
    """A Difftree and the input queries it is responsible for expressing."""

    def __init__(self, root: Node, queries: list[Node]) -> None:
        self.root = root
        self.queries = list(queries)
        self._derivations: Optional[list[Optional[Derivation]]] = None
        self._result_schema: Optional[ResultSchema] = None
        self._result_schema_computed = False
        self._annotator: Optional[TypeAnnotator] = None
        self._fingerprint: Optional[str] = None
        self._mapping_key: Optional[tuple] = None

    # -- basic structure -----------------------------------------------------

    def copy(self) -> "Difftree":
        return Difftree(self.root.copy(), [q for q in self.queries])

    def choice_nodes(self) -> list[ChoiceNode]:
        return choice_nodes(self.root)

    def dynamic_nodes(self) -> list[Node]:
        return dynamic_nodes(self.root)

    def is_static(self) -> bool:
        """True when the tree has no choice nodes (renders as a static chart)."""
        return not self.choice_nodes()

    def fingerprint(self) -> str:
        """Canonical structural identity (cached; the root is never mutated
        in place — transformations always build new Difftree instances)."""
        if self._fingerprint is None:
            self._fingerprint = self.root.fingerprint()
        return self._fingerprint

    def mapping_key(self) -> tuple:
        """Memoization identity for per-tree mapping fragments (cached).

        Two trees share a key only when they agree on structure, choice-node
        ids *and* input queries — exactly the inputs the mapping layer's
        schema / candidate derivations depend on.  Including the ids means a
        cache hit always hands back fragments whose node references and cover
        sets are id-compatible with this tree (copies preserve ids, so
        unchanged trees carried across search states hit), while a
        structurally identical tree rebuilt with fresh ids misses.
        """
        if self._mapping_key is None:
            self._mapping_key = (
                self.fingerprint(),
                tuple(n.node_id for n in self.choice_nodes()),
                tuple(q.fingerprint() for q in self.queries),
            )
        return self._mapping_key

    def pseudo_sql(self) -> str:
        """Human readable rendering with choice nodes shown inline."""
        return to_pseudo_sql(self.root)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Difftree({len(self.queries)} queries, "
            f"{len(self.choice_nodes())} choice nodes)"
        )

    # -- expressiveness ------------------------------------------------------------

    def derivations(self) -> list[Optional[Derivation]]:
        """Per-query derivations (``None`` for queries the tree cannot express)."""
        if self._derivations is None:
            self._derivations = [match_query(self.root, q) for q in self.queries]
        return self._derivations

    def expresses_all(self) -> bool:
        """True when every input query is expressible by this tree."""
        return all(d is not None for d in self.derivations())

    def expressible_queries(self) -> list[Node]:
        """The input queries this tree can express."""
        return [
            q for q, d in zip(self.queries, self.derivations()) if d is not None
        ]

    def resolve_query(self, index: int) -> Node:
        """Resolve the tree back into input query ``index`` (sanity check)."""
        derivation = self.derivations()[index]
        if derivation is None:
            raise ValueError(f"query {index} is not expressible by this Difftree")
        return resolve_with_derivation(self.root, derivation)

    def resolve_default(self, overrides: Optional[dict[int, object]] = None) -> Node:
        """Resolve with default / overridden parameters (the runtime's path)."""
        source = FlatBindingSource(overrides)
        return resolve(self.root, source)

    # -- query bindings (paper Section 3.2.4) ------------------------------------------

    def query_bindings(self) -> dict[int, list[object]]:
        """Per-choice-node union of binding parameters across all input queries.

        The returned lists preserve first-seen order and de-duplicate values,
        matching the paper's Example 4.
        """
        bindings: dict[int, list[object]] = {}
        for derivation in self.derivations():
            if derivation is None:
                continue
            for binding in derivation:
                bucket = bindings.setdefault(binding.node_id, [])
                if binding.param not in bucket:
                    bucket.append(binding.param)
        return bindings

    # -- schemas ---------------------------------------------------------------------

    def annotator(self, catalog: Optional[Catalog]) -> TypeAnnotator:
        if self._annotator is None:
            annotator = TypeAnnotator(catalog)
            annotator.annotate(self.root)
            self._annotator = annotator
        return self._annotator

    def node_schema(self, node: Node, catalog: Optional[Catalog]) -> SchemaExpr:
        return node_schema(node, self.annotator(catalog))

    def result_schema(self, executor: Executor) -> Optional[ResultSchema]:
        """The union result schema over the queries this tree expresses."""
        if not self._result_schema_computed:
            queries = self.expressible_queries() or self.queries
            self._result_schema = result_schema_for_queries(queries, executor)
            self._result_schema_computed = True
        return self._result_schema

    @property
    def schema_cached(self) -> bool:
        """True when :meth:`result_schema` would return without executing."""
        return self._result_schema_computed

    def seed_result_schema(self, schema: Optional[ResultSchema]) -> None:
        """Plant a memoized result schema (from an id-identical tree) so a
        later :meth:`result_schema` call does not re-execute the queries."""
        if not self._result_schema_computed:
            self._result_schema = schema
            self._result_schema_computed = True
