"""Building the initial Difftrees from an input query sequence.

The MCTS search (Section 6.2) starts from one Difftree per input query (a
plain AST), then applies transformation rules — Merge, Partition, PushANY,
… — to discover better structures.  This module provides that initial state
plus the helpers the Merge / Partition rules rely on: merging a set of trees
under a fresh ``ANY`` root and clustering trees by result-schema
compatibility.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from ..database.executor import Executor
from ..sqlparser.ast_nodes import Node
from ..sqlparser.parser import parse
from .nodes import AnyNode
from .schema import union_result_schemas
from .tree import Difftree

QueryLike = Union[str, Node]


def parse_queries(queries: Sequence[QueryLike]) -> list[Node]:
    """Parse a mixed list of SQL strings / pre-parsed ASTs into ASTs."""
    asts: list[Node] = []
    for q in queries:
        asts.append(parse(q) if isinstance(q, str) else q)
    return asts


def initial_difftrees(queries: Sequence[QueryLike]) -> list[Difftree]:
    """One static Difftree per input query (the search's root state)."""
    asts = parse_queries(queries)
    return [Difftree(ast.copy(), [ast]) for ast in asts]


def merge_difftrees(trees: Sequence[Difftree]) -> Difftree:
    """Merge several Difftrees into one rooted at a fresh ANY node.

    The merged tree is responsible for every query of its inputs; the ANY
    root chooses between the original roots (the Merge cross-tree rule in
    Figure 13).  Single-tree merges return a copy unchanged.
    """
    if not trees:
        raise ValueError("cannot merge an empty list of Difftrees")
    if len(trees) == 1:
        return trees[0].copy()
    roots = [t.root.copy() for t in trees]
    queries: list[Node] = []
    for t in trees:
        queries.extend(t.queries)
    return Difftree(AnyNode(roots), queries)


def split_difftree(tree: Difftree) -> list[Difftree]:
    """Split a Difftree rooted at an ANY node into one tree per child.

    Each resulting tree keeps the subset of input queries it can express (the
    Split cross-tree rule).  Trees that cannot express any query keep the
    full query list so they are never silently dropped.
    """
    root = tree.root
    if not isinstance(root, AnyNode):
        return [tree.copy()]
    result = []
    for child in root.children:
        sub = Difftree(child.copy(), tree.queries)
        expressible = sub.expressible_queries()
        result.append(Difftree(child.copy(), expressible or tree.queries))
    return result


def cluster_by_result_schema(
    trees: Iterable[Difftree], executor: Executor, strict: bool = True
) -> list[list[Difftree]]:
    """Group Difftrees whose result schemas are union compatible.

    The paper uses this as the initial Partition: clustering queries by
    result schema reduces redundant visualizations and maximises the chance
    of non-tabular visualization mappings.

    With ``strict=True`` (the default for the *initial* clustering), two
    schemas are additionally required to project the same base attributes in
    every non-aggregate position — queries that group by *different*
    attributes (the cross-filter workload's hour / delay / dist histograms)
    then start as separate Difftrees / views, which is how the paper's
    Figure 14d interface is structured.  The Merge transformation rule can
    still join them later if the search decides a single view is cheaper.
    """
    clusters: list[list[Difftree]] = []
    cluster_schemas: list = []
    for tree in trees:
        schema = tree.result_schema(executor)
        placed = False
        for i, existing in enumerate(cluster_schemas):
            if schema is None or existing is None:
                continue
            if strict and not _same_attribute_sources(existing, schema):
                continue
            merged = union_result_schemas([existing, schema])
            if merged is not None:
                clusters[i].append(tree)
                cluster_schemas[i] = merged
                placed = True
                break
        if not placed:
            clusters.append([tree])
            cluster_schemas.append(schema)
    return clusters


def _same_attribute_sources(a, b) -> bool:
    """True when two result schemas project the same base attributes
    position-by-position (aggregate columns are exempt)."""
    if a.arity() != b.arity():
        return False
    for attr_a, attr_b in zip(a.attributes, b.attributes):
        if attr_a.is_aggregate and attr_b.is_aggregate:
            continue
        if set(attr_a.sources) != set(attr_b.sources):
            return False
    return True
