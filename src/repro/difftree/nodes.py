"""Choice nodes: the Difftree extension of plain abstract syntax trees.

A Difftree (paper Section 3.1) is an AST extended with four kinds of choice
nodes, each corresponding to a PEG production rule:

* ``ANY(c1,..,ck)`` — ordered choice; resolves to one child.  The special
  case with an empty child is exposed as ``OPT``.
* ``VAL(c1,..,ck)`` — a literal placeholder whose domain is the union of its
  children's types; resolves to whatever value it is bound to.
* ``MULTI[sep](c)`` — one-or-more repetition of its single child.
* ``SUBSET[sep](c1,..,ck)`` — any subset of its children, in order.

Choice nodes reuse the generic :class:`repro.sqlparser.ast_nodes.Node`
structure (so rendering, traversal and transformation rules stay uniform) and
add a stable ``node_id`` used to key query bindings and interaction mappings.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from typing import Iterator, Optional, Sequence

from ..sqlparser.ast_nodes import L, Node, empty
from .types import PiType

#: Global counter producing unique choice-node identifiers.
_NODE_COUNTER = itertools.count(1)


class _IdSpace(threading.local):
    """Thread-local override of the id counter (see :func:`node_id_space`)."""

    counter: Optional[Iterator[int]] = None


_ID_SPACE = _IdSpace()

#: Stride between per-worker id spaces.  Worker ``w`` of a parallel search
#: allocates ids from ``(w + 1) * NODE_ID_SPAN`` so that the ids it mints are
#: identical no matter which backend (serial round-robin, threads, or worker
#: processes) runs it, and never collide with another worker's or with the
#: main space (ids below ``NODE_ID_SPAN``).
NODE_ID_SPAN = 1 << 40


def worker_id_counter(worker_index: int) -> Iterator[int]:
    """The private id counter for parallel-search worker ``worker_index``."""
    return itertools.count((worker_index + 1) * NODE_ID_SPAN)


@contextlib.contextmanager
def node_id_space(counter: Optional[Iterator[int]]):
    """Allocate choice-node ids from ``counter`` inside the ``with`` block.

    Thread-local, so concurrent search workers can each pin their own id
    space.  ``None`` leaves the ambient allocator (usually the global
    counter) in place.
    """
    if counter is None:
        yield
        return
    previous = _ID_SPACE.counter
    _ID_SPACE.counter = counter
    try:
        yield
    finally:
        _ID_SPACE.counter = previous


def next_node_id() -> int:
    """Allocate a fresh choice-node identifier."""
    counter = _ID_SPACE.counter
    if counter is not None:
        return next(counter)
    return next(_NODE_COUNTER)


class ChoiceNode(Node):
    """Base class of all choice nodes.

    Attributes:
        node_id: stable identifier, unique per live node instance.  Copies of
            a node keep the same ``node_id`` so that interaction mappings
            computed on a copied tree still refer to the same logical choice.
        sep: separator used by MULTI / SUBSET when concatenating children.
        pitype: optional type annotation (used by VAL nodes and by ANY nodes
            whose children are all static literals).
    """

    __slots__ = ("node_id", "sep", "pitype")

    def __init__(
        self,
        label: str,
        children: Sequence[Node],
        sep: str = ", ",
        pitype: Optional[PiType] = None,
        node_id: Optional[int] = None,
    ) -> None:
        super().__init__(label, None, children)
        self.node_id = node_id if node_id is not None else next_node_id()
        self.sep = sep
        self.pitype = pitype

    def copy(self) -> "ChoiceNode":
        cls = type(self)
        children = [c.copy() for c in self.children]
        if cls is ChoiceNode:
            return ChoiceNode(
                self.label,
                children,
                sep=self.sep,
                pitype=self.pitype,
                node_id=self.node_id,
            )
        # concrete subclasses take the children as their first argument
        return cls(
            children, sep=self.sep, pitype=self.pitype, node_id=self.node_id
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.label}#{self.node_id}({len(self.children)} children)"


class AnyNode(ChoiceNode):
    """Ordered choice over its children (production ``ANY → c1 | .. | ck``)."""

    def __init__(
        self,
        children: Sequence[Node],
        sep: str = ", ",
        pitype: Optional[PiType] = None,
        node_id: Optional[int] = None,
        label: str = L.ANY,
    ) -> None:
        super().__init__(L.ANY, children, sep=sep, pitype=pitype, node_id=node_id)

    @property
    def is_opt(self) -> bool:
        """True when one of the children is the empty subtree (OPT semantics)."""
        return any(c.label == L.EMPTY for c in self.children)

    def non_empty_children(self) -> list[Node]:
        return [c for c in self.children if c.label != L.EMPTY]


class OptNode(ChoiceNode):
    """Optional subtree: resolves to its single child or to nothing."""

    def __init__(
        self,
        children: Sequence[Node],
        sep: str = ", ",
        pitype: Optional[PiType] = None,
        node_id: Optional[int] = None,
        label: str = L.OPT,
    ) -> None:
        if len(children) != 1:
            raise ValueError("OPT takes exactly one child")
        super().__init__(L.OPT, children, sep=sep, pitype=pitype, node_id=node_id)

    @property
    def child(self) -> Node:
        return self.children[0]


class ValNode(ChoiceNode):
    """Literal placeholder; resolves to any bound value of its type.

    The children are the literal nodes observed in the input queries; the
    ``pitype`` records the (possibly attribute-specialised) value domain.
    """

    def __init__(
        self,
        children: Sequence[Node],
        sep: str = ", ",
        pitype: Optional[PiType] = None,
        node_id: Optional[int] = None,
        label: str = L.VAL,
    ) -> None:
        super().__init__(L.VAL, children, sep=sep, pitype=pitype, node_id=node_id)

    def observed_values(self) -> list[object]:
        """Literal values of the children (the values seen in input queries)."""
        return [c.value for c in self.children]


class MultiNode(ChoiceNode):
    """One-or-more repetition of its single child (production ``c (sep c)*``)."""

    def __init__(
        self,
        children: Sequence[Node],
        sep: str = ", ",
        pitype: Optional[PiType] = None,
        node_id: Optional[int] = None,
        label: str = L.MULTI,
    ) -> None:
        if len(children) != 1:
            raise ValueError("MULTI takes exactly one child template")
        super().__init__(L.MULTI, children, sep=sep, pitype=pitype, node_id=node_id)

    @property
    def template(self) -> Node:
        return self.children[0]


class SubsetNode(ChoiceNode):
    """Any subset of its children, in order (production ``c1? .. ck?``)."""

    def __init__(
        self,
        children: Sequence[Node],
        sep: str = ", ",
        pitype: Optional[PiType] = None,
        node_id: Optional[int] = None,
        label: str = L.SUBSET,
    ) -> None:
        super().__init__(L.SUBSET, children, sep=sep, pitype=pitype, node_id=node_id)


#: Mapping from choice label to the concrete node class (used when copying
#: or rebuilding trees generically).
CHOICE_CLASSES = {
    L.ANY: AnyNode,
    L.OPT: OptNode,
    L.VAL: ValNode,
    L.MULTI: MultiNode,
    L.SUBSET: SubsetNode,
}


def make_choice(label: str, children: Sequence[Node], **kwargs) -> ChoiceNode:
    """Construct a choice node of the given label."""
    cls = CHOICE_CLASSES[label]
    return cls(children, **kwargs)


def make_opt(child: Node, **kwargs) -> AnyNode:
    """Build an OPT as the paper defines it: an ANY with an empty child."""
    return AnyNode([child, empty()], **kwargs)


def is_choice_node(node: Node) -> bool:
    """True when the node is one of the Difftree choice nodes."""
    return isinstance(node, ChoiceNode)


def choice_nodes(root: Node) -> list[ChoiceNode]:
    """All choice nodes in the subtree, in pre-order."""
    return [n for n in root.walk() if isinstance(n, ChoiceNode)]


def dynamic_nodes(root: Node) -> list[Node]:
    """All dynamic nodes: choice nodes and their ancestors (paper 3.2.3)."""
    result = []
    for node in root.walk():
        if node.contains_choice():
            result.append(node)
    return result


def is_dynamic(node: Node) -> bool:
    """A node is dynamic if it is a choice node or an ancestor of one."""
    return node.contains_choice()
