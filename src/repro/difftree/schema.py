"""Schema inference for Difftrees (paper Section 3.2).

Three related pieces live here:

* **Type annotation** of static nodes (:class:`TypeAnnotator`): literals get
  primitive types, attribute names are looked up in the catalogue, and the
  paper's heuristic specialises literals compared against an attribute to
  that attribute's type (``a = 1`` gives ``1`` the type ``T.a``).
* **Node schemas** for dynamic nodes (:func:`node_schema`): nested type
  expressions over ``|`` (or), ``?`` (optional) and ``*`` (repetition) that
  describe the structural variation a choice node expresses.  Interaction
  mapping is a schema match between these and widget/interaction schemas.
* **Result schemas** (:func:`result_schema_for_queries`): the union-compatible
  output schema of the ASTs a Difftree expresses, used for visualization
  mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..database.catalog import Catalog
from ..database.executor import Executor
from ..database.table import ResultTable
from ..database.types import DataType
from ..sqlparser.ast_nodes import L, Node
from .nodes import (
    AnyNode,
    ChoiceNode,
    MultiNode,
    OptNode,
    SubsetNode,
    ValNode,
    is_dynamic,
)
from .types import PiType, union_types


# ---------------------------------------------------------------------------
# schema expressions
# ---------------------------------------------------------------------------


class SchemaExpr:
    """Base class of node-schema type expressions."""

    def compatible_with(self, other: "SchemaExpr") -> bool:
        """Structural compatibility used by interaction schema matching."""
        raise NotImplementedError

    def flatten_types(self) -> list[PiType]:
        """All primitive/attribute types mentioned in the expression."""
        raise NotImplementedError


@dataclass(frozen=True)
class TypeExpr(SchemaExpr):
    """A single type."""

    pitype: PiType

    def compatible_with(self, other: SchemaExpr) -> bool:
        if isinstance(other, WildcardExpr):
            return True
        if isinstance(other, TypeExpr):
            return self.pitype.compatible_with(other.pitype)
        return False

    def flatten_types(self) -> list[PiType]:
        return [self.pitype]

    def __str__(self) -> str:
        return str(self.pitype)


@dataclass(frozen=True)
class WildcardExpr(SchemaExpr):
    """The ``_`` wildcard used by widget schemas: matches any expression."""

    def compatible_with(self, other: SchemaExpr) -> bool:
        return True

    def flatten_types(self) -> list[PiType]:
        return []

    def __str__(self) -> str:
        return "_"


@dataclass(frozen=True)
class OrExpr(SchemaExpr):
    """Ordered choice between expressions (the ``|`` operator)."""

    options: tuple[SchemaExpr, ...]

    def compatible_with(self, other: SchemaExpr) -> bool:
        if isinstance(other, WildcardExpr):
            return True
        if isinstance(other, OrExpr):
            return len(self.options) == len(other.options) and all(
                a.compatible_with(b) for a, b in zip(self.options, other.options)
            )
        # an OR is compatible with a single expression when every option is
        return all(opt.compatible_with(other) for opt in self.options)

    def flatten_types(self) -> list[PiType]:
        return [t for opt in self.options for t in opt.flatten_types()]

    def __str__(self) -> str:
        return "|".join(str(o) for o in self.options)


@dataclass(frozen=True)
class OptExpr(SchemaExpr):
    """Existential / optional expression (the ``?`` operator)."""

    inner: SchemaExpr

    def compatible_with(self, other: SchemaExpr) -> bool:
        if isinstance(other, WildcardExpr):
            return True
        if isinstance(other, OptExpr):
            return self.inner.compatible_with(other.inner)
        return False

    def flatten_types(self) -> list[PiType]:
        return self.inner.flatten_types()

    def __str__(self) -> str:
        return f"{self.inner}?"


@dataclass(frozen=True)
class RepExpr(SchemaExpr):
    """Repetition expression (the ``*`` operator)."""

    inner: SchemaExpr

    def compatible_with(self, other: SchemaExpr) -> bool:
        if isinstance(other, WildcardExpr):
            return True
        if isinstance(other, RepExpr):
            return self.inner.compatible_with(other.inner)
        return False

    def flatten_types(self) -> list[PiType]:
        return self.inner.flatten_types()

    def __str__(self) -> str:
        return f"{self.inner}*"


@dataclass(frozen=True)
class TupleSchema(SchemaExpr):
    """A node schema ``< e1, ..., en >``: a list of type expressions."""

    exprs: tuple[SchemaExpr, ...]

    def compatible_with(self, other: SchemaExpr) -> bool:
        if isinstance(other, WildcardExpr):
            return True
        if isinstance(other, TupleSchema):
            if len(self.exprs) != len(other.exprs):
                return False
            return all(
                a.compatible_with(b) for a, b in zip(self.exprs, other.exprs)
            )
        if len(self.exprs) == 1:
            return self.exprs[0].compatible_with(other)
        return False

    def flatten_types(self) -> list[PiType]:
        return [t for e in self.exprs for t in e.flatten_types()]

    def arity(self) -> int:
        return len(self.exprs)

    def __str__(self) -> str:
        return "<" + ", ".join(str(e) for e in self.exprs) + ">"


def schema_of_types(*types: PiType) -> TupleSchema:
    """Convenience constructor: a tuple schema of plain types."""
    return TupleSchema(tuple(TypeExpr(t) for t in types))


# ---------------------------------------------------------------------------
# static type annotation
# ---------------------------------------------------------------------------


class TypeAnnotator:
    """Annotates static nodes of a (Diff)tree with PI2 types.

    The annotator resolves attribute names through the catalogue, restricted
    to the tables referenced by the tree's FROM clauses (including aliases),
    and applies the paper's specialisation heuristic for comparison
    expressions of the form ``attr <op> literal``.
    """

    def __init__(self, catalog: Optional[Catalog]) -> None:
        self.catalog = catalog
        self._types: dict[int, PiType] = {}
        self._alias_map: dict[str, str] = {}
        self._tables: list[str] = []

    # -- public API --------------------------------------------------------

    def annotate(self, root: Node) -> None:
        """Compute types for every node in the tree (cached by identity)."""
        self._collect_scope(root)
        self._annotate_node(root)
        self._specialise_literals(root)

    def type_of(self, node: Node) -> PiType:
        """The inferred type of a node (``AST`` when not annotated)."""
        return self._types.get(id(node), PiType.ast())

    def attribute_of(self, node: Node) -> Optional[str]:
        """Fully qualified attribute for a COLUMN node, if resolvable."""
        if node.label != L.COLUMN:
            return None
        return self._resolve_column(str(node.value))

    # -- scope ------------------------------------------------------------------

    def _collect_scope(self, root: Node) -> None:
        for node in root.walk():
            if node.label == L.TABLE_REF and node.children:
                source = node.children[0]
                alias = None
                if len(node.children) > 1 and node.children[1].label == L.ALIAS:
                    alias = str(node.children[1].value)
                if source.label == L.TABLE_NAME:
                    table = str(source.value)
                    self._tables.append(table)
                    if alias:
                        self._alias_map[alias.lower()] = table
            elif node.label == L.TABLE_NAME:
                self._tables.append(str(node.value))

    def _resolve_column(self, name: str) -> Optional[str]:
        if self.catalog is None:
            return None
        lookup = name
        if "." in name:
            qualifier, bare = name.split(".", 1)
            table = self._alias_map.get(qualifier.lower(), qualifier)
            lookup = f"{table}.{bare}"
        return self.catalog.qualified_name(lookup, self._tables or None)

    # -- base annotation ----------------------------------------------------------

    def _annotate_node(self, node: Node) -> PiType:
        for child in node.children:
            self._annotate_node(child)

        pitype = PiType.ast()
        if node.label == L.LITERAL_NUM or node.label == L.LITERAL_BOOL:
            pitype = PiType.num()
        elif node.label in (L.LITERAL_STR,):
            pitype = PiType.str_()
        elif node.label == L.COLUMN:
            # attribute *names* are strings (they are not attribute types
            # themselves, see paper Example 2)
            pitype = PiType.str_()
        elif node.label == L.FUNC and self.catalog is not None:
            dtype = self.catalog.function_type(str(node.value))
            pitype = PiType.from_data_type(dtype)
        elif node.label == L.FUNC:
            pitype = PiType.num()
        elif isinstance(node, ValNode) and node.pitype is not None:
            pitype = node.pitype
        self._types[id(node)] = pitype
        return pitype

    # -- attribute specialisation -----------------------------------------------------

    def _specialise_literals(self, root: Node) -> None:
        """Apply the ``attr = val`` heuristic (extended to comparisons, BETWEEN, IN)."""
        for node in root.walk():
            if node.label == L.BINOP and str(node.value) in (
                "=",
                "<>",
                "!=",
                ">",
                "<",
                ">=",
                "<=",
            ):
                self._specialise_pair(node.children[0], node.children[1:])
            elif node.label == L.BETWEEN:
                self._specialise_pair(node.children[0], node.children[1:])
            elif node.label in (L.IN_LIST,):
                self._specialise_pair(node.children[0], node.children[1:])

    def _specialise_pair(self, lhs: Node, operands: list[Node]) -> None:
        attr = self.attribute_of(lhs)
        if attr is None or self.catalog is None:
            return
        dtype = self.catalog.attribute_type(attr)
        attr_type = PiType.attr(attr, dtype)
        for operand in operands:
            for descendant in operand.walk():
                if descendant.label in (L.LITERAL_NUM, L.LITERAL_STR, L.LITERAL_BOOL):
                    self._types[id(descendant)] = attr_type
                elif isinstance(descendant, (ValNode, AnyNode)) and not any(
                    c.label not in (L.LITERAL_NUM, L.LITERAL_STR, L.LITERAL_BOOL, L.EMPTY)
                    for c in descendant.children
                ):
                    descendant.pitype = attr_type


# ---------------------------------------------------------------------------
# node schemas (paper Section 3.2.3)
# ---------------------------------------------------------------------------


def node_schema(node: Node, annotator: TypeAnnotator) -> SchemaExpr:
    """Infer the schema of a dynamic node (or the type of a static node)."""
    if not is_dynamic(node) and not isinstance(node, ChoiceNode):
        return TypeExpr(annotator.type_of(node))

    if isinstance(node, ValNode):
        pitype = node.pitype or _val_type(node, annotator)
        return TupleSchema((TypeExpr(pitype),))

    if isinstance(node, OptNode):
        return TupleSchema((OptExpr(_child_expr(node.child, annotator)),))

    if isinstance(node, MultiNode):
        return TupleSchema((RepExpr(_child_expr(node.template, annotator)),))

    if isinstance(node, SubsetNode):
        return TupleSchema(
            tuple(OptExpr(_child_expr(c, annotator)) for c in node.children)
        )

    if isinstance(node, AnyNode) or (
        isinstance(node, ChoiceNode) and node.label == L.ANY
    ):
        non_empty = [c for c in node.children if c.label != L.EMPTY]
        has_empty = len(non_empty) != len(node.children)
        if all(not c.contains_choice() for c in non_empty):
            inner: SchemaExpr = TypeExpr(
                union_types([annotator.type_of(c) for c in non_empty])
            )
        else:
            inner = OrExpr(tuple(_child_expr(c, annotator) for c in non_empty))
        if has_empty:
            inner = OptExpr(inner)
        return TupleSchema((inner,))

    # dynamic non-choice node: cross product of its dynamic children's schemas
    dynamic_children = [c for c in node.children if c.contains_choice()]
    return TupleSchema(
        tuple(_flatten(_child_expr(c, annotator)) for c in dynamic_children)
    )


def _child_expr(child: Node, annotator: TypeAnnotator) -> SchemaExpr:
    if child.contains_choice() or isinstance(child, ChoiceNode):
        return node_schema(child, annotator)
    return TypeExpr(annotator.type_of(child))


def _flatten(expr: SchemaExpr) -> SchemaExpr:
    """Unwrap single-element tuple schemas so nesting matches the paper."""
    if isinstance(expr, TupleSchema) and len(expr.exprs) == 1:
        return expr.exprs[0]
    return expr


def _val_type(node: ValNode, annotator: TypeAnnotator) -> PiType:
    if not node.children:
        return PiType.str_()
    return union_types([annotator.type_of(c) for c in node.children])


# ---------------------------------------------------------------------------
# result schemas (paper Section 3.2.2)
# ---------------------------------------------------------------------------


@dataclass
class ResultAttribute:
    """One attribute of a Difftree's result schema.

    Attributes:
        names: the set of attribute names observed across expressible ASTs.
        pitype: the unioned PI2 type.
        dtype: the unioned database type (used for visual-variable matching).
        sources: fully qualified base attributes feeding this output column.
        is_aggregate: True when at least one query computes it by aggregation.
        distinct_count: an upper bound of the output cardinality (max across
            the observed query results) — used for the categorical check.
        grouped: True when the attribute is a grouping column in every query
            that defines it (supports FD constraint checks).
    """

    names: tuple[str, ...]
    pitype: PiType
    dtype: DataType
    sources: tuple[str, ...] = ()
    is_aggregate: bool = False
    distinct_count: int = 0
    grouped: bool = False

    @property
    def display_name(self) -> str:
        return "/".join(self.names)


@dataclass
class ResultSchema:
    """The result schema of a Difftree: an ordered list of attributes."""

    attributes: list[ResultAttribute] = field(default_factory=list)
    row_count: int = 0

    def arity(self) -> int:
        return len(self.attributes)

    def attribute(self, index: int) -> ResultAttribute:
        return self.attributes[index]

    def __iter__(self):
        return iter(self.attributes)

    def __str__(self) -> str:
        inner = ", ".join(
            f"{a.display_name}:{a.pitype}" for a in self.attributes
        )
        return f"<{inner}>"


def result_schema_of_result(result: ResultTable, ast: Node) -> ResultSchema:
    """Result schema of a single executed query."""
    group_sources = _grouping_sources(ast)
    attrs = []
    for col in result.columns:
        attrs.append(
            ResultAttribute(
                names=(col.name,),
                pitype=PiType.attr(col.source, col.dtype)
                if col.source
                else PiType.from_data_type(col.dtype),
                dtype=col.dtype,
                sources=(col.source,) if col.source else (),
                is_aggregate=col.is_aggregate,
                distinct_count=result.distinct_count(col.name),
                grouped=(
                    col.source.split(".")[-1] in group_sources
                    if col.source
                    else False
                ),
            )
        )
    return ResultSchema(attrs, row_count=len(result.rows))


def _grouping_sources(ast: Node) -> set[str]:
    """Base attributes appearing in the query's (outermost) GROUP BY clause."""
    sources: set[str] = set()
    for clause in ast.children:
        if clause.label == L.GROUPBY_CLAUSE:
            for expr in clause.children:
                for node in expr.walk():
                    if node.label == L.COLUMN:
                        sources.add(str(node.value).split(".")[-1])
    return sources


def union_result_schemas(schemas: list[ResultSchema]) -> Optional[ResultSchema]:
    """Union-compatible combination of per-query result schemas.

    Returns ``None`` when the schemas are not union compatible (different
    arity or irreconcilable types), in which case the Difftree's result
    schema is undefined (paper Section 3.2.2).
    """
    if not schemas:
        return None
    arity = schemas[0].arity()
    if any(s.arity() != arity for s in schemas):
        return None
    attributes = []
    for i in range(arity):
        cols = [s.attribute(i) for s in schemas]
        names = tuple(dict.fromkeys(n for c in cols for n in c.names))
        pitype = union_types([c.pitype for c in cols])
        dtype = cols[0].dtype
        for c in cols[1:]:
            from ..database.types import unify_types

            dtype = unify_types(dtype, c.dtype)
        if dtype is DataType.ANY:
            return None
        attributes.append(
            ResultAttribute(
                names=names,
                pitype=pitype,
                dtype=dtype,
                sources=tuple(dict.fromkeys(s for c in cols for s in c.sources)),
                is_aggregate=any(c.is_aggregate for c in cols),
                distinct_count=max(c.distinct_count for c in cols),
                grouped=all(c.grouped for c in cols if c.sources)
                and any(c.grouped for c in cols),
            )
        )
    return ResultSchema(attributes, row_count=max(s.row_count for s in schemas))


def result_schema_for_queries(
    query_asts: list[Node], executor: Executor
) -> Optional[ResultSchema]:
    """Result schema of the queries a Difftree must express.

    Executes each query (results are cached by the executor) and unions the
    per-query schemas; returns ``None`` when they are not union compatible.
    """
    schemas = []
    for ast in query_asts:
        try:
            result = executor.execute(ast)
        except Exception:
            return None
        schemas.append(result_schema_of_result(result, ast))
    return union_result_schemas(schemas)
