"""Interface mapping generation — Algorithm 1 of the paper (Section 6.2.2).

Given the Difftrees returned by MCTS, the mapper performs a more exhaustive
search for the lowest-cost interface mapping in three phases:

1. **searchV** — enumerate joint visualization mappings (one per Difftree);
2. **searchM** — for each V, enumerate compatible visualization-interaction
   mappings for the ordered choice-node list, completing each prefix with the
   optimal *widget exact cover* of the remaining choice nodes via dynamic
   programming (functions ``F`` (top-k covers) and ``G`` (cheapest cover)),
   with branch-and-bound pruning against the current k-th best cost;
3. **layout** — for the top-k (V, M) mappings by manipulation cost, assign
   horizontal/vertical layout directions (SUPPLE-style branch and bound) and
   return the overall lowest-cost interface.

The mapper also provides the cheap *random mapping* sampler MCTS uses to
estimate state rewards (K random interface mappings per state).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from typing import TYPE_CHECKING

from ..database.catalog import Catalog
from ..database.executor import Executor
from ..obs import span
from ..difftree.nodes import ChoiceNode
from ..difftree.tree import Difftree
from ..interface.spec import (
    AppliedInteraction,
    AppliedWidget,
    Interface,
    View,
)
from .interactions import (
    InteractionCandidate,
    assemble_interaction_candidates,
    conflicting,
    interaction_targets,
    pair_interaction_fragments,
)
from .layout import LayoutLeaf, LayoutTree, build_layout_tree, optimize_layout
from .memo import SHARED_MAPPING_MEMO, MappingMemo
from .visualization import VIS_TYPES, VisMapping, candidate_visualizations
from .widgets import WIDGET_TYPES, WidgetCandidate, candidate_widgets

if TYPE_CHECKING:  # imported lazily to avoid a circular import with repro.cost
    from ..cost.model import CostModel


@dataclass
class MapperConfig:
    """Knobs controlling the exhaustiveness of the mapping search."""

    top_k: int = 10
    max_vis_per_tree: int = 4
    max_joint_vis: int = 24
    max_interaction_candidates_per_node: int = 4
    #: hard cap on searchM recursion nodes per visualization combination —
    #: beyond it the remaining choice nodes are completed with widgets only
    max_searchm_calls: int = 4000
    check_safety: bool = True
    optimize_layout: bool = True
    #: reuse per-tree mapping fragments (schemas, candidate sets) across
    #: calls through the process-wide :data:`~repro.mapping.memo.SHARED_MAPPING_MEMO`
    #: — the MCTS reward loop's states differ by one tree, so fragments of
    #: unchanged trees hit.  Disable to force full re-derivation (the
    #: equivalence tests and the reward-memo benchmark baseline do).
    memoize: bool = True


@dataclass
class MapperStats:
    """Diagnostics for the benchmarks (pruning effectiveness, timings)."""

    vis_combinations: int = 0
    searchm_calls: int = 0
    pruned: int = 0
    widget_cover_states: int = 0
    interfaces_evaluated: int = 0
    # fragment derivations actually performed (memo misses + memo-disabled
    # runs); the reward-memo benchmark compares these across modes
    schema_derivations: int = 0
    vis_derivations: int = 0
    widget_derivations: int = 0
    target_derivations: int = 0
    interaction_derivations: int = 0
    memo_hits: int = 0
    memo_misses: int = 0

    @property
    def candidate_derivations(self) -> int:
        """Total mapping-fragment derivations performed by this mapper."""
        return (
            self.schema_derivations
            + self.vis_derivations
            + self.widget_derivations
            + self.target_derivations
            + self.interaction_derivations
        )


class InterfaceMapper:
    """Implements Algorithm 1: the V, M, L mapping search."""

    def __init__(
        self,
        catalog: Optional[Catalog],
        executor: Optional[Executor],
        cost_model: CostModel,
        config: Optional[MapperConfig] = None,
        memo: Optional[MappingMemo] = None,
        stats: Optional[MapperStats] = None,
    ) -> None:
        self.catalog = catalog
        self.executor = executor
        self.cost_model = cost_model
        self.config = config or MapperConfig()
        self.stats = stats if stats is not None else MapperStats()
        # the memo is partitioned by catalogue object, so a mapper without a
        # catalogue has nothing to key fragments under and runs unmemoized
        if memo is None and self.config.memoize:
            memo = SHARED_MAPPING_MEMO
        self.memo = memo if (self.config.memoize and catalog is not None) else None

    # ------------------------------------------------------------------ memo

    def _memo_lookup(self, key: tuple) -> tuple[bool, object]:
        if self.memo is None:
            return False, None
        hit, value = self.memo.lookup(self.catalog, key)
        if hit:
            self.stats.memo_hits += 1
        else:
            self.stats.memo_misses += 1
        return hit, value

    def _memo_store(self, key: tuple, value: object) -> None:
        if self.memo is not None:
            self.memo.put(self.catalog, key, value)

    # ------------------------------------------------------------------ public

    def generate(self, trees: Sequence[Difftree]) -> list[Interface]:
        """Full Algorithm-1 search; returns interfaces sorted by total cost."""
        with span("mapping.generate", trees=len(trees)):
            return self._generate(trees)

    def _generate(self, trees: Sequence[Difftree]) -> list[Interface]:
        trees = list(trees)
        vis_options = self._vis_options(trees)
        wcand_by_node, universe, clist = self._widget_candidates(trees)

        # dynamic programming tables shared across V combinations — and, via
        # the fragment memo, across generate() calls on identical tree sets:
        # the F/G tables are keyed by the exact (clist, wcand) identity, so
        # the final Algorithm-1 phase is incremental too
        dp = _WidgetCoverDP(
            wcand_by_node, clist, self.cost_model, self.config.top_k, self.stats
        )
        self._memoize_widget_cover(dp, wcand_by_node, clist)

        heap: list[tuple[float, int, Interface]] = []  # max-heap via negated cost
        counter = itertools.count()

        for vis_combo in self._joint_vis(vis_options):
            self.stats.vis_combinations += 1
            views = [View(tree, vis) for tree, vis in zip(trees, vis_combo)]
            icand = self._interaction_candidates(trees, vis_combo)
            self._search_m(
                trees, views, clist, icand, universe, dp, heap, counter
            )

        candidates = [item[2] for item in heap]
        if not candidates:
            candidates = [self._fallback_interface(trees, vis_options)]

        # phase 3: layout optimisation over the top-k manipulation-cost mappings
        finished: list[Interface] = []
        for interface in candidates:
            self._apply_layout(interface)
            self.cost_model.cost(interface)
            finished.append(interface)
        finished.sort(key=lambda i: i.cost.total if i.cost else float("inf"))
        return finished

    def best_interface(self, trees: Sequence[Difftree]) -> Interface:
        """The lowest-cost interface for the given Difftrees."""
        return self.generate(trees)[0]

    def random_interfaces(
        self, trees: Sequence[Difftree], count: int, rng: random.Random
    ) -> list[Interface]:
        """K cheap interface mappings used as the MCTS reward estimator.

        Follows the paper (K random mappings, reward = −min cost), with one
        practical optimisation: the first sample uses the top-ranked
        visualization per tree and greedily prefers the cheapest candidate per
        choice node, which reduces the variance of the reward estimate for
        states that admit good interaction mappings.
        """
        trees = list(trees)
        vis_options = self._vis_options(trees)
        wcand_by_node, universe, clist = self._widget_candidates(trees)
        _ = universe
        interfaces = []
        for sample in range(count):
            greedy = sample == 0
            if greedy:
                vis_combo = [options[0] for options in vis_options]
            else:
                vis_combo = [rng.choice(options) for options in vis_options]
            views = [View(tree, vis) for tree, vis in zip(trees, vis_combo)]
            icand = self._interaction_candidates(trees, vis_combo)
            interface = self._random_mapping(
                trees, views, clist, icand, wcand_by_node, rng, greedy=greedy
            )
            self._apply_layout(interface, optimize=False)
            self.cost_model.cost(interface)
            interfaces.append(interface)
            self.stats.interfaces_evaluated += 1
        return interfaces

    # ------------------------------------------------------------- candidates
    #
    # All per-tree derivations run through the fragment memo when enabled: the
    # MCTS reward loop evaluates states that differ from their predecessor by
    # exactly one tree, so every unchanged tree's schema / candidate fragments
    # hit.  The memo-disabled path runs the identical code with every lookup
    # missing, so both modes derive candidates in the same order and produce
    # byte-identical interfaces.

    def _tree_schema(self, tree: Difftree):
        if self.executor is None:
            return None
        key = ("schema", tree.mapping_key())
        hit, value = self._memo_lookup(key)
        if hit:
            # plant into the instance so direct result_schema() calls reuse it
            tree.seed_result_schema(value)
            return value
        if not tree.schema_cached:
            self.stats.schema_derivations += 1
        value = tree.result_schema(self.executor)
        self._memo_store(key, value)
        return value

    def _tree_vis_options(self, tree: Difftree) -> list[VisMapping]:
        # the library length acts as an epoch: register_visualization()
        # invalidates fragments derived against the smaller library
        key = ("vis", tree.mapping_key(), self.config.max_vis_per_tree, len(VIS_TYPES))
        hit, value = self._memo_lookup(key)
        if hit:
            return value
        schema = self._tree_schema(tree)
        candidates = candidate_visualizations(schema, self.catalog)
        value = candidates[: self.config.max_vis_per_tree]
        self.stats.vis_derivations += 1
        self._memo_store(key, value)
        return value

    def _vis_options(self, trees: Sequence[Difftree]) -> list[list[VisMapping]]:
        return [self._tree_vis_options(tree) for tree in trees]

    def _tree_widget_candidates(
        self, tree: Difftree
    ) -> tuple[list[int], list[WidgetCandidate]]:
        """One tree's choice-node ids and widget candidates (memoized)."""
        key = ("widgets", tree.mapping_key(), len(WIDGET_TYPES))
        hit, value = self._memo_lookup(key)
        if hit:
            return value
        bindings = tree.query_bindings()
        candidates: list[WidgetCandidate] = []
        for node in tree.dynamic_nodes():
            candidates.extend(candidate_widgets(tree, node, self.catalog, bindings))
        value = ([n.node_id for n in tree.choice_nodes()], candidates)
        self.stats.widget_derivations += 1
        self._memo_store(key, value)
        return value

    def _tree_targets(self, tree: Difftree):
        key = ("targets", tree.mapping_key())
        hit, value = self._memo_lookup(key)
        if hit:
            return value
        value = interaction_targets(tree, self.catalog)
        self.stats.target_derivations += 1
        self._memo_store(key, value)
        return value

    def _pair_fragments(
        self,
        source_tree: Difftree,
        vis: VisMapping,
        target_tree: Difftree,
        targets,
        check_safety: bool,
    ):
        key = (
            "ipair",
            source_tree.mapping_key(),
            _vis_key(vis),
            target_tree.mapping_key(),
            check_safety,
        )
        hit, value = self._memo_lookup(key)
        if hit:
            return value
        value = pair_interaction_fragments(
            source_tree, vis, target_tree, targets, self.executor, check_safety
        )
        self.stats.interaction_derivations += 1
        self._memo_store(key, value)
        return value

    def _memoize_widget_cover(
        self,
        dp: "_WidgetCoverDP",
        wcand: dict[int, list[tuple[int, WidgetCandidate]]],
        clist: list[int],
    ) -> None:
        """Share the widget-cover F/G tables across ``generate()`` calls.

        Keyed by the *identity* of (clist, wcand): the candidate objects come
        out of the fragment memo, so two calls over id-identical trees hand
        the DP the very same :class:`WidgetCandidate` instances — and cover
        costs depend only on those candidates and the cost model.  On a hit
        the DP adopts the cached tables (still mutable: later calls keep
        extending them in place, so the memo entry grows incrementally); the
        cached value pins the candidate lists and the cost model alive, which
        keeps the ``id()``-based key components stable for the entry's
        lifetime.

        The adopted tables are mutable and extended without a lock: like the
        mapper's stats counters, ``generate()`` is a single-caller API (the
        pipeline's final phase), and the key embeds the cost model's
        identity, so two concurrently-built pipelines can never adopt the
        same entry.
        """
        if self.memo is None:
            return
        key = (
            "wcover",
            tuple(clist),
            tuple(
                # identity key by design: the memo value pins cands and the
                # cost model alive (see docstring)
                # repro: allow-nondeterministic-key -- identity key by design
                (cid, tuple((t_idx, id(cand)) for t_idx, cand in cands))
                for cid, cands in sorted(wcand.items())
            ),
            id(self.cost_model),  # repro: allow-nondeterministic-key -- pinned above
            self.config.top_k,
        )
        hit, value = self._memo_lookup(key)
        if hit:
            _pinned_wcand, _pinned_cost_model, f_tables, g_tables = value
            dp.adopt_tables(f_tables, g_tables)
        else:
            self._memo_store(key, (wcand, self.cost_model, dp._f, dp._g))

    def _joint_vis(
        self, vis_options: list[list[VisMapping]]
    ) -> list[tuple[VisMapping, ...]]:
        combos = list(itertools.product(*vis_options))
        # rank joint combinations by the sum of per-vis heuristic scores
        combos.sort(key=lambda combo: -sum(v.score for v in combo))
        return combos[: self.config.max_joint_vis]

    def _widget_candidates(
        self, trees: Sequence[Difftree]
    ) -> tuple[dict[int, list[tuple[int, WidgetCandidate]]], frozenset[int], list[int]]:
        """Widget candidates per choice node id, the universe, and clist."""
        wcand: dict[int, list[tuple[int, WidgetCandidate]]] = {}
        clist: list[int] = []
        for t_idx, tree in enumerate(trees):
            choice_ids, candidates = self._tree_widget_candidates(tree)
            clist.extend(choice_ids)
            for cand in candidates:
                for cid in cand.cover:
                    wcand.setdefault(cid, []).append((t_idx, cand))
        universe = frozenset(clist)
        return wcand, universe, clist

    def _interaction_candidates(
        self, trees: Sequence[Difftree], vis_combo: Sequence[VisMapping]
    ) -> dict[int, list[InteractionCandidate]]:
        check_safety = self.config.check_safety and self.executor is not None
        targets = [self._tree_targets(tree) for tree in trees]
        fragments = [
            [
                self._pair_fragments(tree, vis, trees[t], targets[t], check_safety)
                if vis.result_schema is not None
                else {}
                for t in range(len(trees))
            ]
            for tree, vis in zip(trees, vis_combo)
        ]
        icand = assemble_interaction_candidates(trees, list(vis_combo), fragments)
        limit = self.config.max_interaction_candidates_per_node
        pruned: dict[int, list[InteractionCandidate]] = {}
        for cid, cands in icand.items():
            # keep at most one candidate per (source view, cover): click /
            # multi-click / brush variants covering the same nodes explode the
            # searchM branching without changing the reachable covers
            seen: set[tuple] = set()
            kept: list[InteractionCandidate] = []
            for cand in sorted(cands, key=lambda c: c.cost):
                key = (cand.source_tree_index, cand.cover)
                if key in seen:
                    continue
                seen.add(key)
                kept.append(cand)
                if len(kept) >= limit:
                    break
            pruned[cid] = kept
        return pruned

    # ---------------------------------------------------------------- searchM

    def _search_m(
        self,
        trees: Sequence[Difftree],
        views: list[View],
        clist: list[int],
        icand: dict[int, list[InteractionCandidate]],
        universe: frozenset[int],
        dp: "_WidgetCoverDP",
        heap: list,
        counter,
    ) -> None:
        """Algorithm 1's recursive interaction-mapping enumeration."""
        config = self.config
        cost_model = self.cost_model
        kth_cost = lambda: (-heap[0][0]) if len(heap) >= config.top_k else float("inf")
        call_budget = [config.max_searchm_calls]
        cm_cache: dict[frozenset[int], float] = {}

        def current_cm(interactions: list[InteractionCandidate]) -> float:
            # the cache is local to this _search_m call and the candidate
            # objects outlive every entry, so identity keys cannot go stale
            # repro: allow-nondeterministic-key -- call-local identity cache
            key = frozenset(id(c) for c in interactions)
            if key in cm_cache:
                return cm_cache[key]
            interface = Interface(
                views=list(views),
                widgets=[],
                interactions=[AppliedInteraction(c) for c in interactions],
            )
            value = cost_model.manipulation_cost(interface, penalize_uncovered=False)
            cm_cache[key] = value
            return value

        def push(interface: Interface, cm: float) -> None:
            entry = (-cm, next(counter), interface)
            if len(heap) < config.top_k:
                heapq.heappush(heap, entry)
            elif cm < -heap[0][0]:
                heapq.heapreplace(heap, entry)
            self.stats.interfaces_evaluated += 1

        def recurse(
            i: int,
            interactions: list[InteractionCandidate],
            covered: frozenset[int],
        ) -> None:
            self.stats.searchm_calls += 1
            uncovered_prefix = frozenset(
                cid for cid in clist[:i] if cid not in covered
            )
            # pruning: current interaction cost + cheapest widget completion
            bound = current_cm(interactions) + dp.G(uncovered_prefix)
            if bound >= kth_cost():
                self.stats.pruned += 1
                return

            if i == len(clist):
                uncovered = frozenset(cid for cid in clist if cid not in covered)
                for cover_cost, cover in dp.F(uncovered):
                    widgets = [
                        AppliedWidget(cand, t_idx) for t_idx, cand in cover
                    ]
                    interface = Interface(
                        views=list(views),
                        widgets=widgets,
                        interactions=[AppliedInteraction(c) for c in interactions],
                    )
                    if not interface.is_complete():
                        continue
                    cm = cost_model.manipulation_cost(interface)
                    if cm < kth_cost():
                        push(interface, cm)
                return

            node_id = clist[i]
            call_budget[0] -= 1
            if call_budget[0] > 0:
                for candidate in icand.get(node_id, []):
                    if not candidate.cover.isdisjoint(covered):
                        continue
                    if any(conflicting(candidate, other) for other in interactions):
                        continue
                    interactions.append(candidate)
                    recurse(i + 1, interactions, covered | candidate.cover)
                    interactions.pop()
            recurse(i + 1, interactions, covered)

        recurse(0, [], frozenset())

    # ---------------------------------------------------------------- helpers

    def _random_mapping(
        self,
        trees: Sequence[Difftree],
        views: list[View],
        clist: list[int],
        icand: dict[int, list[InteractionCandidate]],
        wcand: dict[int, list[tuple[int, WidgetCandidate]]],
        rng: random.Random,
        greedy: bool = False,
    ) -> Interface:
        """Randomised (or greedy) assignment used by the MCTS reward estimator."""
        covered: set[int] = set()
        interactions: list[InteractionCandidate] = []
        widgets: list[AppliedWidget] = []
        order = list(clist)
        if not greedy:
            rng.shuffle(order)
        for node_id in order:
            if node_id in covered:
                continue
            choices: list[tuple[float, str, object]] = []
            for cand in icand.get(node_id, []):
                if cand.cover.isdisjoint(covered) and not any(
                    conflicting(cand, other) for other in interactions
                ):
                    choices.append((cand.cost, "interaction", cand))
            for t_idx, cand in wcand.get(node_id, []):
                if cand.cover.isdisjoint(covered):
                    cost = self.cost_model.widget_manipulation_cost(
                        AppliedWidget(cand, t_idx)
                    )
                    choices.append((cost, "widget", (t_idx, cand)))
            if not choices:
                continue
            if greedy:
                cost, kind, chosen = min(choices, key=lambda c: c[0])
            else:
                # prefer interaction mappings, as the cost model does
                weights = [3.0 if kind == "interaction" else 1.0 for _, kind, _ in choices]
                cost, kind, chosen = rng.choices(choices, weights=weights, k=1)[0]
            if kind == "interaction":
                interactions.append(chosen)  # type: ignore[arg-type]
                covered.update(chosen.cover)  # type: ignore[union-attr]
            else:
                t_idx, cand = chosen  # type: ignore[misc]
                widgets.append(AppliedWidget(cand, t_idx))
                covered.update(cand.cover)
        return Interface(
            views=list(views),
            widgets=widgets,
            interactions=[AppliedInteraction(c) for c in interactions],
        )

    def _fallback_interface(
        self, trees: Sequence[Difftree], vis_options: list[list[VisMapping]]
    ) -> Interface:
        """A safe default: best chart per tree, one widget per choice node."""
        views = [View(tree, options[0]) for tree, options in zip(trees, vis_options)]
        widgets: list[AppliedWidget] = []
        covered: set[int] = set()
        for t_idx, tree in enumerate(trees):
            bindings = tree.query_bindings()
            for node in tree.choice_nodes():
                if node.node_id in covered:
                    continue
                cands = candidate_widgets(tree, node, self.catalog, bindings)
                if cands:
                    widgets.append(AppliedWidget(cands[0], t_idx))
                    covered.update(cands[0].cover)
        return Interface(views=views, widgets=widgets, interactions=[])

    def _apply_layout(self, interface: Interface, optimize: Optional[bool] = None) -> None:
        """Phase 3: build the layout tree and choose H/V directions."""
        optimize = self.config.optimize_layout if optimize is None else optimize
        view_elements = []
        for v_idx, view in enumerate(interface.views):
            vis_leaf = LayoutLeaf(
                kind="vis",
                ref=view.vis,
                width=view.vis.vis_type.width,
                height=view.vis.vis_type.height,
                label=view.vis.describe(),
            )
            widget_leaves = []
            for widget in interface.widgets:
                if widget.view_index != v_idx:
                    continue
                w, h = widget.candidate.estimated_size()
                widget_leaves.append(
                    LayoutLeaf(
                        kind="widget",
                        ref=widget.candidate,
                        width=w,
                        height=h,
                        label=widget.candidate.describe(),
                    )
                )
            view_elements.append((vis_leaf, widget_leaves))
        layout = build_layout_tree(view_elements)
        interface.layout = layout
        if optimize:
            def layout_cost(tree: LayoutTree) -> float:
                interface.layout = tree
                return self.cost_model.navigation_cost(
                    interface
                ) + self.cost_model.layout_penalty(interface)

            optimized, _ = optimize_layout(layout, layout_cost)
            interface.layout = optimized


def _vis_key(vis: VisMapping) -> tuple:
    """Memo identity of a visualization mapping: chart type + assignment.

    Self-contained (no object identity) so fragments derived for the same
    logical mapping hit across `VisMapping` instances.
    """
    return (vis.vis_type.name, tuple(sorted(vis.assignment.items())))


# ---------------------------------------------------------------------------
# widget exact-cover dynamic programming (functions F and G of Algorithm 1)
# ---------------------------------------------------------------------------


class _WidgetCoverDP:
    """Memoised exact-cover search over widget candidates.

    ``G(N)`` is the cheapest manipulation cost of covering the choice-node set
    ``N`` exactly with widgets; ``F(N)`` returns the top-k exact covers.  Both
    recurse on "the first uncovered node in clist order", as in Algorithm 1.
    """

    def __init__(
        self,
        wcand: dict[int, list[tuple[int, WidgetCandidate]]],
        clist: list[int],
        cost_model: CostModel,
        k: int,
        stats: MapperStats,
    ) -> None:
        self.wcand = wcand
        self.order = {cid: i for i, cid in enumerate(clist)}
        self.cost_model = cost_model
        self.k = k
        self.stats = stats
        self._g: dict[frozenset[int], float] = {}
        self._f: dict[frozenset[int], list[tuple[float, list[tuple[int, WidgetCandidate]]]]] = {}

    def adopt_tables(
        self,
        f_tables: dict[frozenset[int], list],
        g_tables: dict[frozenset[int], float],
    ) -> None:
        """Continue from memoized F/G tables (see ``_memoize_widget_cover``)."""
        self._f = f_tables
        self._g = g_tables

    def _first(self, nodes: frozenset[int]) -> int:
        return min(nodes, key=lambda cid: self.order.get(cid, 1 << 30))

    def _widget_cost(self, t_idx: int, cand: WidgetCandidate) -> float:
        return self.cost_model.widget_manipulation_cost(AppliedWidget(cand, t_idx))

    def G(self, nodes: frozenset[int]) -> float:
        if not nodes:
            return 0.0
        if nodes in self._g:
            return self._g[nodes]
        self.stats.widget_cover_states += 1
        first = self._first(nodes)
        best = float("inf")
        for t_idx, cand in self.wcand.get(first, []):
            # G is a lower bound used for pruning: unlike F it does not insist
            # on an exact cover, so a widget whose cover extends beyond N is
            # still allowed (Algorithm 1, function G)
            rest = self.G(nodes - cand.cover)
            best = min(best, self._widget_cost(t_idx, cand) + rest)
        self._g[nodes] = best
        return best

    def F(
        self, nodes: frozenset[int]
    ) -> list[tuple[float, list[tuple[int, WidgetCandidate]]]]:
        if not nodes:
            return [(0.0, [])]
        if nodes in self._f:
            return self._f[nodes]
        first = self._first(nodes)
        results: list[tuple[float, list[tuple[int, WidgetCandidate]]]] = []
        for t_idx, cand in self.wcand.get(first, []):
            if not cand.cover <= nodes:
                continue
            cost = self._widget_cost(t_idx, cand)
            for sub_cost, sub_cover in self.F(nodes - cand.cover):
                results.append((cost + sub_cost, [(t_idx, cand), *sub_cover]))
        results.sort(key=lambda item: item[0])
        self._f[nodes] = results[: self.k]
        return self._f[nodes]
