"""Layout mapping: layout trees, bounding boxes and H/V assignment
(paper Section 4.3).

The layout tree has one leaf per on-screen element (a visualization or a
widget) and internal nodes that lay their children out horizontally (H) or
vertically (V).  Per Difftree we build a layout node containing its widgets
(ordered by their depth-first position in the Difftree) followed by its
visualization; the interface root stacks the per-tree layouts.

Bounding boxes are estimated from widget / visualization sizes; the final H/V
directions are assigned by a branch-and-bound search that minimises the
interface cost (navigation + size penalty), following SUPPLE.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

#: Pixel padding between sibling elements.
PADDING = 12

HORIZONTAL = "H"
VERTICAL = "V"


@dataclass
class LayoutLeaf:
    """A leaf of the layout tree: one visualization or widget.

    ``ref`` points back at the mapped object (a ``VisMapping`` or a
    ``WidgetCandidate``); the element's position is filled in by
    :meth:`LayoutTree.compute_boxes`.
    """

    kind: str                # "vis" or "widget"
    ref: object
    width: int
    height: int
    label: str = ""
    x: float = 0.0
    y: float = 0.0

    @property
    def centroid(self) -> tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def min_extent(self) -> float:
        """W in Fitts' law: the smaller of the element's box dimensions."""
        return float(min(self.width, self.height))


@dataclass
class LayoutNode:
    """An internal layout node laying its children out in one direction."""

    children: list[Union["LayoutNode", LayoutLeaf]] = field(default_factory=list)
    direction: str = VERTICAL
    label: str = ""
    x: float = 0.0
    y: float = 0.0
    width: float = 0.0
    height: float = 0.0

    def leaves(self) -> list[LayoutLeaf]:
        out: list[LayoutLeaf] = []
        for child in self.children:
            if isinstance(child, LayoutLeaf):
                out.append(child)
            else:
                out.extend(child.leaves())
        return out

    def internal_nodes(self) -> list["LayoutNode"]:
        out = [self]
        for child in self.children:
            if isinstance(child, LayoutNode):
                out.extend(child.internal_nodes())
        return out

    def compute_boxes(self, x: float = 0.0, y: float = 0.0) -> tuple[float, float]:
        """Assign positions to all descendants; returns (width, height)."""
        self.x, self.y = x, y
        cursor_x, cursor_y = x, y
        max_w, max_h = 0.0, 0.0
        total_w, total_h = 0.0, 0.0
        for child in self.children:
            if isinstance(child, LayoutLeaf):
                child.x, child.y = cursor_x, cursor_y
                w, h = float(child.width), float(child.height)
            else:
                w, h = child.compute_boxes(cursor_x, cursor_y)
            if self.direction == HORIZONTAL:
                cursor_x += w + PADDING
                total_w += w + PADDING
                max_h = max(max_h, h)
            else:
                cursor_y += h + PADDING
                total_h += h + PADDING
                max_w = max(max_w, w)
        if self.direction == HORIZONTAL:
            self.width = max(0.0, total_w - PADDING)
            self.height = max_h
        else:
            self.width = max_w
            self.height = max(0.0, total_h - PADDING)
        return self.width, self.height


@dataclass
class LayoutTree:
    """The interface's layout: a root layout node plus helpers."""

    root: LayoutNode

    def compute_boxes(self) -> tuple[float, float]:
        return self.root.compute_boxes(0.0, 0.0)

    def leaves(self) -> list[LayoutLeaf]:
        return self.root.leaves()

    def size(self) -> tuple[float, float]:
        return self.root.width, self.root.height

    def leaf_for(self, ref: object) -> Optional[LayoutLeaf]:
        for leaf in self.leaves():
            if leaf.ref is ref:
                return leaf
        return None

    def describe(self, node: Optional[LayoutNode] = None, indent: int = 0) -> str:
        node = node or self.root
        lines = [f"{'  ' * indent}{node.direction} [{node.label}]"]
        for child in node.children:
            if isinstance(child, LayoutLeaf):
                lines.append(
                    f"{'  ' * (indent + 1)}{child.kind}:{child.label} "
                    f"({child.width}x{child.height})"
                )
            else:
                lines.append(self.describe(child, indent + 1))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# building layout trees
# ---------------------------------------------------------------------------


def build_layout_tree(
    view_elements: Sequence[tuple[LayoutLeaf, Sequence[LayoutLeaf]]],
) -> LayoutTree:
    """Assemble the interface layout tree.

    ``view_elements`` holds, per Difftree, the visualization leaf and the
    widget leaves that parameterise it (in Difftree depth-first order).  Each
    view becomes a layout node (widgets then the chart); the root stacks the
    views.
    """
    view_nodes: list[Union[LayoutNode, LayoutLeaf]] = []
    for i, (vis_leaf, widget_leaves) in enumerate(view_elements):
        children: list[Union[LayoutNode, LayoutLeaf]] = []
        if widget_leaves:
            children.append(
                LayoutNode(list(widget_leaves), direction=VERTICAL, label=f"widgets-{i}")
            )
        children.append(vis_leaf)
        view_nodes.append(LayoutNode(children, direction=HORIZONTAL, label=f"view-{i}"))
    root = LayoutNode(view_nodes, direction=VERTICAL, label="root")
    tree = LayoutTree(root)
    tree.compute_boxes()
    return tree


# ---------------------------------------------------------------------------
# H/V assignment (branch and bound, following SUPPLE)
# ---------------------------------------------------------------------------


def optimize_layout(
    tree: LayoutTree,
    cost_fn: Callable[[LayoutTree], float],
    max_nodes: int = 12,
) -> tuple[LayoutTree, float]:
    """Assign H/V directions to the internal layout nodes minimising ``cost_fn``.

    The search enumerates direction assignments with branch-and-bound pruning
    on the running best cost; with the small layout trees PI2 produces
    (typically < 8 internal nodes) this is exact.
    """
    nodes = tree.root.internal_nodes()[:max_nodes]
    best_cost = float("inf")
    best_dirs: Optional[tuple[str, ...]] = None

    for dirs in itertools.product((VERTICAL, HORIZONTAL), repeat=len(nodes)):
        for node, direction in zip(nodes, dirs):
            node.direction = direction
        tree.compute_boxes()
        cost = cost_fn(tree)
        if cost < best_cost:
            best_cost = cost
            best_dirs = dirs

    if best_dirs is not None:
        for node, direction in zip(nodes, best_dirs):
            node.direction = direction
        tree.compute_boxes()
    return tree, best_cost
