"""A process-wide memo for per-tree mapping artifacts.

The MCTS reward loop calls ``InterfaceMapper.random_interfaces`` on every
search state, and every call re-derived result schemas, visualization
candidates, widget candidates and interaction candidates for **every** tree
in the state — even though a rule application changes exactly one tree.  This
module is the mapping layer's counterpart of
:data:`repro.database.plancache.SHARED_PLAN_CACHE`, one level up the stack:
instead of compiled query plans it caches *mapping fragments*, keyed by the
identity of the Difftree they were derived from, so a one-tree delta between
consecutive states recomputes only that tree's fragments.

Cached fragment kinds (see :class:`repro.mapping.mapper.InterfaceMapper`):

* ``("schema", tree_key)`` — the tree's union result schema;
* ``("vis", tree_key, …)`` — ranked visualization candidates;
* ``("widgets", tree_key, …)`` — choice-node ids + widget candidates;
* ``("targets", tree_key)`` — the tree's interaction-bindable dynamic nodes;
* ``("ipair", source_key, vis_key, target_key, …)`` — interaction candidates
  of one (source visualization, target tree) pair, including safety checks.

``tree_key`` is :meth:`repro.difftree.tree.Difftree.mapping_key`: the tree's
structural fingerprint **plus** its choice-node ids and query fingerprints.
Including the ids guarantees that a cache hit hands back fragments whose
``Node`` references and cover sets are id-compatible with the requesting tree
(transformations copy nodes with their ids, so unchanged trees hit across
states), and a structurally identical tree rebuilt with fresh ids simply
misses instead of producing covers that no longer match.

Like the plan cache, entries are partitioned per *catalogue object* (schemas
and candidates embed catalogue statistics) and held through weak references,
LRU-bounded per catalogue, and guarded by one lock so parallel search workers
can share a single memo.  The ``unlocked-shared-mutation`` rule of
``repro.analysis`` statically requires every mutation of the bookkeeping to
hold that lock; the ``nondeterministic-key`` rule polices what may appear in
``tree_key`` (the sanctioned identity-keyed widget-cover entries carry
justified ``# repro: allow-…`` pragmas in ``mapper.py``).
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from ..obs import span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..database.catalog import Catalog


class MappingMemo:
    """LRU fragment cache keyed by tree identity, partitioned per catalogue."""

    def __init__(self, max_size_per_catalog: int = 16384) -> None:
        self.max_size = max(1, max_size_per_catalog)
        self._by_catalog: "weakref.WeakKeyDictionary[Catalog, OrderedDict]" = (
            weakref.WeakKeyDictionary()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def lookup(self, catalog: "Catalog", key: Hashable) -> tuple[bool, object]:
        """``(hit, value)`` — a fragment value may legitimately be ``None``."""
        with self._lock:
            fragments = self._by_catalog.get(catalog)
            if fragments is None or key not in fragments:
                self.misses += 1
                return False, None
            fragments.move_to_end(key)
            self.hits += 1
            return True, fragments[key]

    def put(self, catalog: "Catalog", key: Hashable, value: object) -> None:
        with self._lock:
            fragments = self._by_catalog.get(catalog)
            if fragments is None:
                fragments = OrderedDict()
                self._by_catalog[catalog] = fragments
            fragments[key] = value
            fragments.move_to_end(key)
            while len(fragments) > self.max_size:
                fragments.popitem(last=False)

    def contains(self, catalog: "Catalog", key: Hashable) -> bool:
        """Membership check that does not touch the hit/miss counters."""
        with self._lock:
            fragments = self._by_catalog.get(catalog)
            return fragments is not None and key in fragments

    def clear(self, catalog: "Catalog" = None) -> None:
        """Drop cached fragments for one catalogue, or for all of them."""
        with self._lock:
            if catalog is None:
                self._by_catalog = weakref.WeakKeyDictionary()
            else:
                self._by_catalog.pop(catalog, None)

    def size(self, catalog: "Catalog" = None) -> int:
        with self._lock:
            if catalog is not None:
                return len(self._by_catalog.get(catalog) or ())
            return sum(len(f) for f in self._by_catalog.values())

    def info(self) -> dict:
        with self._lock:
            return {
                "catalogs": len(self._by_catalog),
                "fragments": sum(len(f) for f in self._by_catalog.values()),
                "hits": self.hits,
                "misses": self.misses,
            }

    #: fragment kinds safe to persist across processes: their keys are built
    #: from structural fingerprints + node ids that travel with the trees.
    #: Identity-keyed entries (the sanctioned ``id(widget)``-keyed
    #: widget-cover kinds in ``mapper.py``) are process-local by construction
    #: — a recycled ``id()`` in another process would alias garbage — and are
    #: therefore never exported.
    PERSISTABLE_KINDS = frozenset({"schema", "vis", "widgets", "targets", "ipair"})

    def export_entries(self, catalog: "Catalog") -> list[tuple]:
        """The catalogue's persistable ``(key, fragment)`` pairs, LRU order."""
        with self._lock:
            fragments = self._by_catalog.get(catalog)
            if not fragments:
                return []
            return [
                (key, value)
                for key, value in fragments.items()
                if isinstance(key, tuple) and key and key[0] in self.PERSISTABLE_KINDS
            ]

    def import_entries(self, catalog: "Catalog", entries: list[tuple]) -> int:
        """Plant exported fragments for a same-fingerprint catalogue.

        Existing keys are kept; non-persistable kinds are dropped even if a
        tampered cache file smuggles them in.  Returns the number of entries
        actually added.
        """
        added = 0
        with span("persist.import_memo", entries=len(entries)):
            with self._lock:
                fragments = self._by_catalog.get(catalog)
                if fragments is None:
                    fragments = OrderedDict()
                    self._by_catalog[catalog] = fragments
                for key, value in entries:
                    if not (
                        isinstance(key, tuple) and key and key[0] in self.PERSISTABLE_KINDS
                    ):
                        continue
                    if key not in fragments:
                        fragments[key] = value
                        added += 1
                while len(fragments) > self.max_size:
                    fragments.popitem(last=False)
        return added


#: The process-wide memo used by every :class:`InterfaceMapper` whose config
#: has ``memoize=True`` (the default), unless a private memo is passed in.
#: All MCTS workers and the final Algorithm-1 mapping share one fragment set.
SHARED_MAPPING_MEMO = MappingMemo()
