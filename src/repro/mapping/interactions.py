"""Visualization interactions: event streams, candidate mappings, and safety
(paper Sections 4.2.1 and 4.2.2).

A visualization is a one-to-one projection of input records to marks.  Each
visualization type supports a set of interactions (click, brush, pan, zoom,
…); each interaction produces one or more *event streams* whose schemas are
specified in terms of the visualization's visual variables and translated —
through the visualization mapping — into the Difftree's result attributes.

An interaction mapping binds event streams to dynamic nodes of *any* Difftree
in the interface (this is what produces linked, multi-view interactions such
as cross-filtering).  A candidate mapping is **valid** when the stream schema
matches the dynamic node's schema, and **safe** when at least one input query
of the visualized Difftree yields a result from which the interaction can
express every query binding of the covered nodes (Section 4.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..database.catalog import Catalog
from ..database.executor import Executor
from ..difftree.nodes import AnyNode, ChoiceNode, OptNode, ValNode
from ..difftree.schema import (
    OptExpr,
    SchemaExpr,
    TupleSchema,
    TypeExpr,
)
from ..difftree.tree import Difftree
from ..difftree.types import PiType
from ..sqlparser.ast_nodes import L, Node
from .visualization import VisMapping
from .widgets import _choice_cover  # shared helper

#: Manipulation-cost constants: visualization interactions are deliberately
#: cheap so the cost model prefers them over widgets (paper Section 5).
INTERACTION_COSTS = {
    "click": 0.4,
    "multi-click": 0.6,
    "brush-x": 0.5,
    "brush-y": 0.5,
    "brush-xy": 0.6,
    "pan": 0.3,
    "zoom": 0.3,
}

#: Interactions that cannot coexist on the same visualization (Algorithm 1's
#: compatibility check): brushes conflict with each other and with pan.
CONFLICTS = {
    frozenset({"brush-x", "brush-y"}),
    frozenset({"brush-x", "brush-xy"}),
    frozenset({"brush-y", "brush-xy"}),
    frozenset({"pan", "brush-x"}),
    frozenset({"pan", "brush-y"}),
    frozenset({"pan", "brush-xy"}),
}


@dataclass
class EventStream:
    """One event stream of an interaction, expressed over result attributes.

    Attributes:
        name: stream name (e.g. ``x-range``, ``record``).
        attr_indices: the result-schema attribute indices whose values the
            stream emits, in order.
        kind: ``point`` for single-value selections (click), ``range`` for
            interval selections (brush / pan / zoom), ``set`` for multi-record
            selections (multi-click, brush record stream).
    """

    name: str
    attr_indices: tuple[int, ...]
    kind: str


@dataclass
class InteractionCandidate:
    """A candidate mapping from dynamic node(s) to a visualization interaction.

    Attributes:
        interaction: interaction name (click, brush-x, pan, …).
        source_tree_index: which Difftree's visualization emits the events.
        vis: that Difftree's visualization mapping.
        stream_bindings: (stream, target dynamic node, target tree index).
        cover: all choice-node ids covered across the bound dynamic nodes.
        cost: manipulation-cost constant for this interaction.
        safe: result of the safety check.
    """

    interaction: str
    source_tree_index: int
    vis: VisMapping
    stream_bindings: list[tuple[EventStream, Node, int]] = field(default_factory=list)
    cover: frozenset[int] = frozenset()
    cost: float = 0.5
    safe: bool = True

    def describe(self) -> str:
        targets = ",".join(
            f"t{tree}:{node.label}" for _, node, tree in self.stream_bindings
        )
        return f"{self.interaction}@view{self.source_tree_index}→[{targets}]"


# ---------------------------------------------------------------------------
# event-stream schemas per interaction
# ---------------------------------------------------------------------------


def interaction_streams(
    vis: VisMapping, interaction: str
) -> list[EventStream]:
    """The event streams an interaction produces under a visualization mapping."""
    if vis.result_schema is None:
        return []
    x = vis.attribute_for("x")
    y = vis.attribute_for("y")
    color = vis.attribute_for("color")
    all_attrs = tuple(range(vis.result_schema.arity()))

    if vis.vis_type.name == "table":
        if interaction == "click":
            return [EventStream("record", all_attrs, "point")]
        return []

    streams: list[EventStream] = []
    if interaction == "click":
        streams.append(EventStream("record", _present((x, y, color)), "point"))
        if x is not None:
            streams.append(EventStream("x-value", (x,), "point"))
        if color is not None:
            streams.append(EventStream("color-value", (color,), "point"))
    elif interaction == "multi-click":
        streams.append(EventStream("records", _present((x, y, color)), "set"))
        if x is not None:
            streams.append(EventStream("x-values", (x,), "set"))
    elif interaction == "brush-x" and x is not None:
        streams.append(EventStream("x-range", (x, x), "range"))
        streams.append(EventStream("records", all_attrs, "set"))
    elif interaction == "brush-y" and y is not None:
        streams.append(EventStream("y-range", (y, y), "range"))
        streams.append(EventStream("records", all_attrs, "set"))
    elif interaction == "brush-xy" and x is not None and y is not None:
        streams.append(EventStream("x-range", (x, x), "range"))
        streams.append(EventStream("y-range", (y, y), "range"))
        streams.append(EventStream("records", all_attrs, "set"))
    elif interaction in ("pan", "zoom") and x is not None:
        streams.append(EventStream("x-range", (x, x), "range"))
        if y is not None:
            streams.append(EventStream("y-range", (y, y), "range"))
    return streams


def _present(indices: tuple[Optional[int], ...]) -> tuple[int, ...]:
    return tuple(i for i in indices if i is not None)


def stream_schema(vis: VisMapping, stream: EventStream) -> SchemaExpr:
    """The PI2 schema of an event stream (in result-attribute terms)."""
    assert vis.result_schema is not None
    exprs = []
    for idx in stream.attr_indices:
        attr = vis.result_schema.attribute(idx)
        exprs.append(TypeExpr(attr.pitype))
    return TupleSchema(tuple(exprs))


# ---------------------------------------------------------------------------
# candidate generation
# ---------------------------------------------------------------------------


def interaction_targets(
    tree: Difftree, catalog: Optional[Catalog] = None
) -> list[tuple[Node, SchemaExpr, frozenset[int]]]:
    """One tree's interaction-bindable dynamic nodes: (node, schema, cover).

    This is the per-tree half of candidate generation — it depends only on
    the tree and the catalogue, so the mapper memoizes it per tree key.
    """
    targets: list[tuple[Node, SchemaExpr, frozenset[int]]] = []
    for node in tree.dynamic_nodes():
        cover = _choice_cover(node)
        if not cover:
            continue
        targets.append((node, tree.node_schema(node, catalog), cover))
    return targets


#: One pair fragment: interaction name → [(bound streams, node, cover, cost)]
#: in the target tree's dynamic-node order.
PairFragments = dict[str, list[tuple[list[EventStream], Node, frozenset[int], float]]]


def pair_interaction_fragments(
    source_tree: Difftree,
    vis: VisMapping,
    target_tree: Difftree,
    targets: list[tuple[Node, SchemaExpr, frozenset[int]]],
    executor: Optional[Executor] = None,
    check_safety: bool = True,
) -> PairFragments:
    """Valid (and safe) interaction bindings of one source visualization onto
    one target tree's dynamic nodes.

    The fragment depends only on (source tree, its visualization mapping,
    target tree) — not on where either tree sits in the interface — so the
    mapper memoizes it per (source key, vis key, target key) and a one-tree
    delta between search states recomputes only the pairs involving the
    changed tree.  The safety check (which executes the source queries) runs
    here, at fragment-build time, exactly once per pair.
    """
    fragments: PairFragments = {}
    if vis.result_schema is None:
        return fragments
    for interaction in vis.vis_type.interactions:
        streams = interaction_streams(vis, interaction)
        if not streams:
            continue
        base_cost = INTERACTION_COSTS.get(interaction, 0.5)
        entries = []
        for node, schema, cover in targets:
            binding = _bind_streams(vis, streams, schema, node)
            if binding is None:
                continue
            if check_safety and executor is not None:
                probe = InteractionCandidate(
                    interaction=interaction,
                    source_tree_index=0,
                    vis=vis,
                    stream_bindings=[(s, node, 0) for s in binding],
                    cover=cover,
                    cost=base_cost,
                )
                if not is_safe(probe, source_tree, target_tree, executor):
                    continue
            entries.append((binding, node, cover, base_cost))
        if entries:
            fragments[interaction] = entries
    return fragments


def assemble_interaction_candidates(
    trees: Sequence[Difftree],
    vis_mappings: Sequence[VisMapping],
    fragments: list[list[PairFragments]],
) -> dict[int, list[InteractionCandidate]]:
    """Combine per-pair fragments into the per-choice-node candidate map.

    ``fragments[s][t]`` holds the fragments of source ``s``'s visualization
    bound onto tree ``t``.  Candidate order — source-major, then interaction,
    then target tree/node — reproduces the order a monolithic enumeration
    produces, which matters because downstream pruning breaks cost ties by
    insertion order.
    """
    candidates: dict[int, list[InteractionCandidate]] = {}
    for source_idx, vis in enumerate(vis_mappings):
        if vis.result_schema is None:
            continue
        for interaction in vis.vis_type.interactions:
            for target_idx in range(len(trees)):
                pair = fragments[source_idx][target_idx]
                for binding, node, cover, cost in pair.get(interaction, ()):
                    candidate = InteractionCandidate(
                        interaction=interaction,
                        source_tree_index=source_idx,
                        vis=vis,
                        stream_bindings=[(s, node, target_idx) for s in binding],
                        cover=cover,
                        cost=cost,
                    )
                    for cid in cover:
                        candidates.setdefault(cid, []).append(candidate)
    return candidates


def candidate_interactions(
    trees: Sequence[Difftree],
    vis_mappings: Sequence[VisMapping],
    catalog: Optional[Catalog] = None,
    executor: Optional[Executor] = None,
    check_safety: bool = True,
) -> dict[int, list[InteractionCandidate]]:
    """Interaction candidates per choice-node id, across all Difftrees.

    ``vis_mappings[i]`` is the visualization chosen for ``trees[i]``; the
    interactions it supports may bind to dynamic nodes of *any* tree.  This
    convenience entry point derives every fragment fresh; the mapper uses the
    decomposed functions above so fragments can be memoized per tree pair.
    """
    targets = [interaction_targets(tree, catalog) for tree in trees]
    fragments = [
        [
            pair_interaction_fragments(
                tree, vis, trees[t], targets[t], executor, check_safety
            )
            for t in range(len(trees))
        ]
        for tree, vis in zip(trees, vis_mappings)
    ]
    return assemble_interaction_candidates(trees, vis_mappings, fragments)


def _bind_streams(
    vis: VisMapping,
    streams: list[EventStream],
    node_schema_expr: SchemaExpr,
    node: Node,
) -> Optional[list[EventStream]]:
    """Choose the stream(s) whose schema matches the dynamic node's schema.

    Returns the list of streams to bind (usually one; two for pan/zoom over a
    conjunction of two range predicates), or ``None`` when no match exists.
    """
    if not _binds_values(node):
        return None

    # direct match of a single stream
    for stream in streams:
        if stream_schema(vis, stream).compatible_with(node_schema_expr) or (
            node_schema_expr.compatible_with(stream_schema(vis, stream))
        ):
            return [stream]

    # multi-stream match: the node is a conjunction whose dynamic children each
    # match one distinct stream (e.g. pan emitting x-range and y-range binding
    # a WHERE clause with two BETWEEN predicates)
    if isinstance(node_schema_expr, TupleSchema) and len(node_schema_expr.exprs) >= 2:
        chosen: list[EventStream] = []
        used: set[str] = set()
        for expr in node_schema_expr.exprs:
            matched = None
            for stream in streams:
                if stream.name in used:
                    continue
                sschema = stream_schema(vis, stream)
                if sschema.compatible_with(expr) or expr.compatible_with(sschema):
                    matched = stream
                    break
            if matched is None:
                return None
            used.add(matched.name)
            chosen.append(matched)
        return chosen
    return None


def _binds_values(node: Node) -> bool:
    """Interactions emit data *values*, so they can only bind choice nodes
    whose alternatives are values: VAL nodes or ANYs over literals.  A choice
    between arbitrary syntax structures (e.g. which attribute to group by)
    needs a widget instead."""
    from .widgets import top_choice_nodes

    choice_children = top_choice_nodes(node)
    if not choice_children:
        return False
    for choice in choice_children:
        if isinstance(choice, ValNode):
            continue
        if isinstance(choice, OptNode):
            return False
        if isinstance(choice, AnyNode):
            non_empty = choice.non_empty_children()
            if choice.is_opt:
                return False
            if all(
                c.label in (L.LITERAL_NUM, L.LITERAL_STR, L.LITERAL_BOOL)
                for c in non_empty
            ):
                continue
            return False
        return False
    return True


# ---------------------------------------------------------------------------
# safety (paper Section 4.2.2)
# ---------------------------------------------------------------------------


def is_safe(
    candidate: InteractionCandidate,
    source_tree: Difftree,
    target_tree: Difftree,
    executor: Executor,
) -> bool:
    """Check that the interaction can express every query binding.

    We instantiate the source visualization with each input query's result
    and check whether there is one query whose result lets the interaction
    express every binding value of the covered choice nodes.
    """
    from .widgets import top_choice_nodes

    bindings = target_tree.query_bindings()
    needed: dict[int, list[object]] = {}
    for _, node, _ in candidate.stream_bindings:
        for choice in top_choice_nodes(node):
            if choice.node_id in bindings:
                values = [
                    v
                    for v in bindings[choice.node_id]
                    if isinstance(v, (int, float, str)) and not isinstance(v, bool)
                ]
                if values and isinstance(choice, (ValNode,)):
                    needed[choice.node_id] = values
                elif values and isinstance(choice, AnyNode) and not isinstance(
                    choice, (OptNode,)
                ):
                    literal_children = [
                        c.value
                        for c in choice.children
                        if c.label in (L.LITERAL_NUM, L.LITERAL_STR)
                    ]
                    if literal_children and len(literal_children) == len(
                        choice.non_empty_children()
                    ):
                        needed[choice.node_id] = [
                            literal_children[int(v)]
                            for v in values
                            if isinstance(v, int) and 0 <= int(v) < len(literal_children)
                        ]
    if not needed:
        return True

    attr_indices = sorted(
        {i for stream, _, _ in candidate.stream_bindings for i in stream.attr_indices}
    )
    range_kind = any(
        stream.kind == "range" for stream, _, _ in candidate.stream_bindings
    )
    if candidate.interaction in ("pan", "zoom"):
        # pan / zoom are not limited to the rendered data extent
        return True

    for query in source_tree.expressible_queries() or source_tree.queries:
        try:
            result = executor.execute(query)
        except Exception:
            continue
        expressible: set[object] = set()
        lo: Optional[float] = None
        hi: Optional[float] = None
        for idx in attr_indices:
            if idx >= len(result.columns):
                continue
            values = result.values(result.columns[idx].name)
            expressible.update(v for v in values if v is not None)
            numeric = [v for v in values if isinstance(v, (int, float))]
            if numeric:
                lo = min(numeric) if lo is None else min(lo, min(numeric))
                hi = max(numeric) if hi is None else max(hi, max(numeric))
        ok = True
        for values in needed.values():
            for value in values:
                if range_kind and isinstance(value, (int, float)):
                    if lo is None or hi is None or not (lo <= value <= hi):
                        ok = False
                        break
                elif value not in expressible:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            return True
    return False


def conflicting(a: InteractionCandidate, b: InteractionCandidate) -> bool:
    """Two interaction candidates conflict when they use incompatible
    interactions on the same visualization, or reuse the same interaction."""
    if a.source_tree_index != b.source_tree_index:
        return False
    if a.interaction == b.interaction:
        return True
    return frozenset({a.interaction, b.interaction}) in CONFLICTS
