"""Widget library and widget mapping candidates (paper Section 4.2, Table 2).

Each widget template declares a *schema* (what structural variation it can
express), an optional *constraint* over the dynamic node's query bindings
(e.g. a range slider needs ``start <= end``), a manipulation-domain size used
by the cost model, and an estimated pixel size used by the layout / Fitts'
law model.

A widget mapping ``δ → w`` is **valid** when the dynamic node's schema
matches the widget's schema and the node's query bindings satisfy the
widget's constraints; it is always **safe** because widgets are initialised
with the node's query bindings (Section 4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..database.catalog import Catalog
from ..difftree.nodes import (
    AnyNode,
    ChoiceNode,
    MultiNode,
    OptNode,
    SubsetNode,
    ValNode,
)
from ..difftree.schema import (
    OptExpr,
    OrExpr,
    RepExpr,
    SchemaExpr,
    TupleSchema,
    TypeExpr,
    WildcardExpr,
)
from ..difftree.tree import Difftree
from ..sqlparser.ast_nodes import L, Node
from ..sqlparser.render import to_pseudo_sql


@dataclass(frozen=True)
class WidgetType:
    """A widget template.

    Attributes:
        name: widget name (radio, dropdown, slider, …).
        schema: the widget schema from Table 2 (``_`` is the wildcard).
        constraint: optional predicate over the node's query-binding tuples.
        base_width / base_height: estimated pixel footprint; enumerated
            widgets additionally grow by ``per_option`` pixels per option.
        per_option: growth per option (vertical for radio/checkbox lists).
        enumerates_options: True when the widget's manipulation-domain size is
            the number of options (radio, dropdown, checkbox); False for
            free-form widgets (textbox, slider) whose |w.d| is 0 in the paper.
        is_layout_widget: True for widgets that also act as layout containers
            (toggles / tab-like widgets wrapping nested sub-interfaces).
    """

    name: str
    schema: SchemaExpr
    constraint: Optional[Callable[[Sequence[object]], bool]] = None
    base_width: int = 160
    base_height: int = 28
    per_option: int = 22
    enumerates_options: bool = True
    is_layout_widget: bool = False
    base_cost: float = 1.0


def _num() -> TypeExpr:
    from ..difftree.types import PiType

    return TypeExpr(PiType.num())


def _range_constraint(bindings: Sequence[object]) -> bool:
    """Range-slider constraint: every binding tuple must satisfy start <= end."""
    for binding in bindings:
        if isinstance(binding, (tuple, list)) and len(binding) == 2:
            lo, hi = binding
            try:
                if lo is not None and hi is not None and lo > hi:
                    return False
            except TypeError:
                return False
    return True


#: The prototype's widget library (paper Table 2 plus button/adder).
BUTTON = WidgetType(
    "button", TupleSchema((WildcardExpr(),)), base_width=90, base_height=30, base_cost=1.1
)
RADIO = WidgetType("radio", TupleSchema((WildcardExpr(),)), base_width=150, base_height=24)
DROPDOWN = WidgetType(
    "dropdown", TupleSchema((WildcardExpr(),)), base_width=170, base_height=32, per_option=0
)
TEXTBOX = WidgetType(
    "textbox",
    TupleSchema((WildcardExpr(),)),
    base_width=170,
    base_height=30,
    per_option=0,
    enumerates_options=False,
    base_cost=2.6,
)
TOGGLE = WidgetType(
    "toggle",
    TupleSchema((OptExpr(WildcardExpr()),)),
    base_width=70,
    base_height=28,
    per_option=0,
    is_layout_widget=True,
)
CHECKBOX = WidgetType(
    "checkbox", TupleSchema((RepExpr(WildcardExpr()),)), base_width=160, base_height=24
)
SLIDER = WidgetType(
    "slider",
    TupleSchema((_num(),)),
    base_width=220,
    base_height=34,
    per_option=0,
    enumerates_options=False,
    base_cost=1.2,
)
RANGE_SLIDER = WidgetType(
    "range_slider",
    TupleSchema((_num(), _num())),
    constraint=_range_constraint,
    base_width=240,
    base_height=36,
    per_option=0,
    enumerates_options=False,
    base_cost=1.4,
)
ADDER = WidgetType(
    "adder",
    TupleSchema((RepExpr(WildcardExpr()),)),
    base_width=200,
    base_height=40,
    per_option=0,
    enumerates_options=False,
    base_cost=2.2,
)

WIDGET_TYPES: list[WidgetType] = [
    BUTTON,
    RADIO,
    DROPDOWN,
    TEXTBOX,
    TOGGLE,
    CHECKBOX,
    SLIDER,
    RANGE_SLIDER,
    ADDER,
]

def register_widget(widget: WidgetType) -> None:
    """Add a widget template to the library (extensibility hook).

    Call at import/setup time, before any search runs: the registry is
    read concurrently by search workers but only ever extended up front.
    """
    WIDGET_TYPES.append(widget)  # repro: allow-unlocked-shared-mutation -- setup-time hook


# ---------------------------------------------------------------------------
# widget candidates
# ---------------------------------------------------------------------------


@dataclass
class WidgetCandidate:
    """A valid widget mapping for one dynamic node.

    Attributes:
        widget: the widget template.
        node: the dynamic node it binds to.
        cover: choice-node ids covered by this widget (the node's choice
            descendants, or the node itself when it is a choice node).
        options: the option labels / values presented by the widget.
        domain: (min, max) numeric domain for sliders, if applicable.
        label: human readable widget label used in the rendered interface.
    """

    widget: WidgetType
    node: Node
    cover: frozenset[int]
    options: list[object] = field(default_factory=list)
    domain: Optional[tuple[object, object]] = None
    label: str = ""

    @property
    def domain_size(self) -> int:
        """|w.d| in the paper's manipulation cost: options for enumerating
        widgets, zero for free-form widgets."""
        return len(self.options) if self.widget.enumerates_options else 0

    def estimated_size(self) -> tuple[int, int]:
        width = self.widget.base_width
        height = self.widget.base_height + self.widget.per_option * len(self.options)
        return width, height

    def describe(self) -> str:
        target = self.label or f"node#{sorted(self.cover)}"
        return f"{self.widget.name}[{target}]"


def top_choice_nodes(node: Node) -> list[ChoiceNode]:
    """The *topmost* choice nodes in the subtree rooted at ``node``.

    These are the choice nodes a mapping on ``node`` actually binds: an event
    tuple routed to an ancestor dynamic node is distributed to its dynamic
    children, stopping at the first choice node on each path (paper §4.2:
    "the event tuples generated by the range slider that are bound to the
    node will be routed to its child ANY nodes").  Choice nodes nested deeper
    (e.g. a VAL inside one alternative of an ANY) still need their own
    mapping.
    """
    if isinstance(node, ChoiceNode):
        return [node]
    result: list[ChoiceNode] = []
    for child in node.children:
        result.extend(top_choice_nodes(child))
    return result


def _choice_cover(node: Node) -> frozenset[int]:
    """The choice-node ids a mapping on ``node`` binds (its exact cover)."""
    return frozenset(n.node_id for n in top_choice_nodes(node))


def _schema_matches(node_schema: SchemaExpr, widget: WidgetType) -> bool:
    """Schema match: same arity and pairwise-compatible type expressions."""
    return node_schema.compatible_with(widget.schema)


def _binding_tuples(
    tree: Difftree, node: Node, bindings: dict[int, list[object]]
) -> list[object]:
    """Query-binding tuples for a dynamic node (used for constraint checks).

    For an ancestor dynamic node covering several choice nodes, the tuple is
    the per-choice-node binding values zipped positionally.
    """
    choice_children = top_choice_nodes(node)
    if len(choice_children) == 1:
        return list(bindings.get(choice_children[0].node_id, []))
    per_node = [bindings.get(c.node_id, []) for c in choice_children]
    width = max((len(v) for v in per_node), default=0)
    tuples = []
    for i in range(width):
        tuples.append(tuple(v[i] if i < len(v) else None for v in per_node))
    return tuples


def _option_labels(node: Node) -> list[str]:
    """Human readable option labels for an enumerating widget."""
    if isinstance(node, ValNode):
        return [str(v) for v in node.observed_values()]
    if isinstance(node, (AnyNode, SubsetNode)):
        labels = []
        for child in node.children:
            if child.label == L.EMPTY:
                labels.append("(none)")
            else:
                labels.append(to_pseudo_sql(child))
        return labels
    if isinstance(node, (OptNode,)):
        return ["on", "off"]
    if isinstance(node, MultiNode):
        return [to_pseudo_sql(node.template)]
    return [to_pseudo_sql(node)]


def candidate_widgets(
    tree: Difftree,
    node: Node,
    catalog: Optional[Catalog] = None,
    bindings: Optional[dict[int, list[object]]] = None,
) -> list[WidgetCandidate]:
    """All valid widget mappings for one dynamic node of a Difftree."""
    bindings = bindings if bindings is not None else tree.query_bindings()
    schema = tree.node_schema(node, catalog)
    if isinstance(schema, TypeExpr):
        return []
    cover = _choice_cover(node)
    if not cover:
        return []
    tuples = _binding_tuples(tree, node, bindings)
    candidates: list[WidgetCandidate] = []

    for widget in WIDGET_TYPES:
        if isinstance(node, SubsetNode) and widget.name in ("checkbox", "adder"):
            # a SUBSET schema <c1?, .., ck?> is naturally expressed by a
            # checkbox list even though its arity differs from <v:_*>
            pass
        elif not _schema_matches(schema, widget):
            continue
        if widget.constraint is not None and not widget.constraint(tuples):
            continue
        candidate = _instantiate(widget, tree, node, cover, tuples, catalog)
        if candidate is not None:
            candidates.append(candidate)
    return candidates


def _instantiate(
    widget: WidgetType,
    tree: Difftree,
    node: Node,
    cover: frozenset[int],
    binding_tuples: list[object],
    catalog: Optional[Catalog],
) -> Optional[WidgetCandidate]:
    """Initialise a widget candidate with options / domain for the node."""
    label = _node_label(node)
    options: list[object] = []
    domain: Optional[tuple[object, object]] = None

    if widget.name in ("slider", "range_slider"):
        domain = _numeric_domain(node, binding_tuples, catalog)
        if domain is None:
            return None
    elif widget.enumerates_options:
        options = _option_labels(node)
        if not options:
            options = [str(t) for t in binding_tuples] or ["(default)"]
    else:
        options = []

    return WidgetCandidate(
        widget=widget,
        node=node,
        cover=cover,
        options=options,
        domain=domain,
        label=label,
    )


def _node_label(node: Node) -> str:
    """A short label describing what the widget controls."""
    if isinstance(node, ValNode) and node.pitype and node.pitype.attribute:
        return node.pitype.attribute
    for descendant in node.walk():
        if descendant.label == L.COLUMN:
            return str(descendant.value)
        if isinstance(descendant, ValNode) and descendant.pitype and descendant.pitype.attribute:
            return descendant.pitype.attribute
    return node.label.lower()


def _numeric_domain(
    node: Node, binding_tuples: list[object], catalog: Optional[Catalog]
) -> Optional[tuple[object, object]]:
    """The slider initialisation domain: the attribute's domain from the
    catalogue when known (paper Section 2), else the observed binding range."""
    attr = None
    for descendant in node.walk():
        if isinstance(descendant, (ValNode, AnyNode)) and descendant.pitype is not None:
            if descendant.pitype.attribute:
                attr = descendant.pitype.attribute
                break
    if attr is not None and catalog is not None:
        try:
            lo, hi = catalog.domain(attr)
            if lo is not None and hi is not None:
                return (lo, hi)
        except Exception:
            pass
    values: list[float] = []
    for t in binding_tuples:
        items = t if isinstance(t, (tuple, list)) else (t,)
        for v in items:
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                values.append(v)
    if not values:
        return None
    return (min(values), max(values))
