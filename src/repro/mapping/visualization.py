"""Visualization model and visualization mapping (paper Section 4.1, Table 1).

A visualization type is modelled as a *visualization schema*: a set of visual
variables (x, y, color, …), each accepting quantitative (Q) or categorical (C)
data, plus optional functional-dependency constraints (a bar chart assumes
``(x, color) → y``).  A Difftree can be rendered by a visualization when
there is a valid mapping from its result schema to the visualization schema:

1. every data attribute is mapped to a visual variable,
2. each visual variable is mapped to at most once,
3. every non-optional visual variable is mapped to,
4. the data attribute's type is compatible with the visual variable's type
   (numeric ⇒ Q; numeric or string with cardinality below 20 ⇒ C), and
5. the FD constraints hold (validated from the query structure — grouping
   attributes determine aggregates — or attribute uniqueness).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..database.catalog import Catalog
from ..database.statistics import CATEGORICAL_CARDINALITY_THRESHOLD
from ..database.types import DataType
from ..difftree.schema import ResultAttribute, ResultSchema

#: Visual-variable data kinds.
QUANTITATIVE = "Q"
CATEGORICAL = "C"


@dataclass(frozen=True)
class VisualVariable:
    """One visual variable of a visualization schema (e.g. ``x`` or ``color``)."""

    name: str
    kinds: tuple[str, ...]          # accepted kinds, e.g. ("Q", "C")
    optional: bool = False


@dataclass(frozen=True)
class VisualizationType:
    """A chart type: schema, FD constraints and supported interactions."""

    name: str
    variables: tuple[VisualVariable, ...]
    #: functional dependencies as (determinant variable names, dependent name)
    fds: tuple[tuple[tuple[str, ...], str], ...] = ()
    interactions: tuple[str, ...] = ()
    #: estimated rendering size in pixels (used by the layout / Fitts model)
    width: int = 320
    height: int = 240
    #: tables render anything; charts need a defined result schema
    accepts_any_schema: bool = False

    def required_variables(self) -> list[VisualVariable]:
        return [v for v in self.variables if not v.optional]

    def variable(self, name: str) -> VisualVariable:
        for v in self.variables:
            if v.name == name:
                return v
        raise KeyError(name)


#: The prototype's visualization library (paper Table 1).
TABLE_VIS = VisualizationType(
    name="table",
    variables=(),
    interactions=("click",),
    width=420,
    height=260,
    accepts_any_schema=True,
)

POINT_VIS = VisualizationType(
    name="point",
    variables=(
        VisualVariable("x", (QUANTITATIVE, CATEGORICAL)),
        VisualVariable("y", (QUANTITATIVE,)),
        VisualVariable("shape", (CATEGORICAL,), optional=True),
        VisualVariable("size", (CATEGORICAL,), optional=True),
        VisualVariable("color", (CATEGORICAL,), optional=True),
    ),
    interactions=("click", "multi-click", "brush-x", "brush-y", "brush-xy", "pan", "zoom"),
    width=360,
    height=280,
)

BAR_VIS = VisualizationType(
    name="bar",
    variables=(
        VisualVariable("x", (CATEGORICAL,)),
        VisualVariable("y", (QUANTITATIVE,)),
        VisualVariable("color", (CATEGORICAL,), optional=True),
    ),
    fds=((("x", "color"), "y"),),
    interactions=("click", "multi-click", "brush-x"),
    width=360,
    height=260,
)

LINE_VIS = VisualizationType(
    name="line",
    variables=(
        VisualVariable("x", (QUANTITATIVE, CATEGORICAL)),
        VisualVariable("y", (QUANTITATIVE,)),
        VisualVariable("shape", (CATEGORICAL,), optional=True),
        VisualVariable("size", (CATEGORICAL,), optional=True),
        VisualVariable("color", (CATEGORICAL,), optional=True),
    ),
    fds=((("x", "shape", "size", "color"), "y"),),
    interactions=("click", "pan", "zoom"),
    width=400,
    height=260,
)

#: Registry of available visualization types (extensible).
VIS_TYPES: list[VisualizationType] = [TABLE_VIS, POINT_VIS, BAR_VIS, LINE_VIS]


def register_visualization(vis_type: VisualizationType) -> None:
    """Add a new visualization type to the library (extensibility hook).

    Call at import/setup time, before any search runs: the registry is
    read concurrently by search workers but only ever extended up front.
    """
    VIS_TYPES.append(vis_type)  # repro: allow-unlocked-shared-mutation -- setup-time hook


# ---------------------------------------------------------------------------
# visualization mapping
# ---------------------------------------------------------------------------


@dataclass
class VisMapping:
    """A valid mapping from a Difftree's result schema to a visualization.

    Attributes:
        vis_type: the chart type.
        assignment: result-attribute index → visual variable name.
        result_schema: the result schema being rendered.
        score: heuristic preference used to rank candidates (charts over
            tables, temporal x on line charts, …).
    """

    vis_type: VisualizationType
    assignment: dict[int, str] = field(default_factory=dict)
    result_schema: Optional[ResultSchema] = None
    score: float = 0.0

    def variable_for(self, attr_index: int) -> Optional[str]:
        return self.assignment.get(attr_index)

    def attribute_for(self, variable: str) -> Optional[int]:
        for idx, var in self.assignment.items():
            if var == variable:
                return idx
        return None

    def describe(self) -> str:
        if self.vis_type.accepts_any_schema or self.result_schema is None:
            return f"{self.vis_type.name}"
        parts = []
        for idx, var in sorted(self.assignment.items(), key=lambda kv: kv[1]):
            parts.append(f"{self.result_schema.attribute(idx).display_name}→{var}")
        return f"{self.vis_type.name}({', '.join(parts)})"


def attribute_kinds(attr: ResultAttribute) -> set[str]:
    """The visual kinds (Q / C) an output attribute is compatible with."""
    kinds: set[str] = set()
    if attr.dtype.is_numeric:
        kinds.add(QUANTITATIVE)
    if attr.distinct_count and attr.distinct_count < CATEGORICAL_CARDINALITY_THRESHOLD:
        kinds.add(CATEGORICAL)
    if attr.dtype in (DataType.STR, DataType.DATE):
        # strings above the cardinality threshold can still only go to C axes,
        # but such mappings are filtered by the threshold check above; dates
        # behave like quantitative positions on line charts
        if attr.dtype is DataType.DATE:
            kinds.add(QUANTITATIVE)
    return kinds


def _fd_satisfied(
    vis: VisualizationType,
    assignment: dict[int, str],
    schema: ResultSchema,
    catalog: Optional[Catalog],
) -> bool:
    """Check the visualization's FD constraints against the result schema."""
    for determinants, dependent in vis.fds:
        dep_idx = _attr_for_variable(assignment, dependent)
        if dep_idx is None:
            continue
        det_indices = [
            _attr_for_variable(assignment, d) for d in determinants
        ]
        det_indices = [i for i in det_indices if i is not None]
        if not det_indices:
            return False
        det_attrs = [schema.attribute(i) for i in det_indices]
        dep_attr = schema.attribute(dep_idx)
        # (a) grouping attributes determine aggregates
        if dep_attr.is_aggregate and all(a.grouped for a in det_attrs):
            continue
        # (b) a unique (primary-key-like) determinant determines everything
        if catalog is not None and any(
            src and catalog.is_unique(src)
            for a in det_attrs
            for src in a.sources
        ):
            continue
        # (c) the determinant's cardinality equals the row count (observed FD)
        if any(
            a.distinct_count and a.distinct_count >= schema.row_count > 0
            for a in det_attrs
        ):
            continue
        return False
    return True


def _attr_for_variable(assignment: dict[int, str], variable: str) -> Optional[int]:
    for idx, var in assignment.items():
        if var == variable:
            return idx
    return None


def candidate_visualizations(
    schema: Optional[ResultSchema],
    catalog: Optional[Catalog] = None,
    max_candidates: int = 24,
) -> list[VisMapping]:
    """All valid visualization mappings for a result schema, ranked.

    The table visualization is always valid (it accepts any schema), so the
    returned list is never empty.  Chart mappings are generated by iterating
    over visualization types and permutations of the result schema (the
    paper's candidate-generation procedure), validating the mapping rules and
    FD constraints.
    """
    candidates: list[VisMapping] = []

    table = VisMapping(TABLE_VIS, {}, schema, score=_score_table(schema))
    candidates.append(table)

    if schema is None or schema.arity() == 0:
        return candidates

    attrs = list(schema.attributes)
    kinds = [attribute_kinds(a) for a in attrs]
    renderable = [i for i in range(len(attrs)) if not _is_hidden_key(attrs[i], catalog)]

    for vis in VIS_TYPES:
        if vis.accepts_any_schema:
            continue
        required = [v.name for v in vis.required_variables()]
        optional = [v.name for v in vis.variables if v.optional]
        if len(renderable) < len(required) or len(renderable) > len(vis.variables):
            continue
        # choose which optional variables to use so every attribute is mapped
        n_optional = len(renderable) - len(required)
        for opt_combo in itertools.combinations(optional, n_optional):
            variables = required + list(opt_combo)
            for perm in itertools.permutations(renderable):
                assignment = dict(zip(perm, variables))
                if not _types_compatible(vis, assignment, kinds):
                    continue
                if not _fd_satisfied(vis, assignment, schema, catalog):
                    continue
                mapping = VisMapping(
                    vis, assignment, schema, score=_score(vis, assignment, attrs)
                )
                if not _duplicate(mapping, candidates):
                    candidates.append(mapping)
                if len(candidates) >= max_candidates:
                    break
            if len(candidates) >= max_candidates:
                break
        if len(candidates) >= max_candidates:
            break

    candidates.sort(key=lambda m: -m.score)
    return candidates


def _is_hidden_key(attr: ResultAttribute, catalog: Optional[Catalog]) -> bool:
    """Primary-key columns are not rendered by default (paper: Connect example)."""
    if catalog is None or not attr.sources:
        return False
    return (
        all(catalog.is_unique(src) for src in attr.sources)
        and not attr.is_aggregate
        and attr.dtype.is_numeric
        and any(src.lower().endswith(("id", ".id", "objid")) for src in attr.sources)
    )


def _types_compatible(
    vis: VisualizationType, assignment: dict[int, str], kinds: list[set[str]]
) -> bool:
    for attr_idx, var_name in assignment.items():
        variable = vis.variable(var_name)
        if not (kinds[attr_idx] & set(variable.kinds)):
            return False
    return True


def _score(
    vis: VisualizationType, assignment: dict[int, str], attrs: list[ResultAttribute]
) -> float:
    """Heuristic preference for ranking candidate charts."""
    score = 1.0
    x_idx = _attr_for_variable(assignment, "x")
    y_idx = _attr_for_variable(assignment, "y")
    if x_idx is not None:
        x_attr = attrs[x_idx]
        if vis.name == "line" and x_attr.dtype is DataType.DATE:
            score += 2.0
        if vis.name == "bar" and x_attr.grouped:
            score += 1.5
        if vis.name == "point" and x_attr.dtype.is_numeric and not x_attr.grouped:
            score += 1.2
        if vis.name == "line" and x_attr.dtype.is_numeric and not x_attr.grouped:
            score += 0.3
    if y_idx is not None and attrs[y_idx].is_aggregate and vis.name == "bar":
        score += 1.0
    # prefer charts whose x axis is not an aggregate
    if x_idx is not None and attrs[x_idx].is_aggregate:
        score -= 0.5
    return score


def _score_table(schema: Optional[ResultSchema]) -> float:
    """Tables win only for wide results (the SDSS case: nine attributes)."""
    if schema is None:
        return 1.0
    return 1.5 if schema.arity() > 5 else 0.1


def _duplicate(mapping: VisMapping, existing: Sequence[VisMapping]) -> bool:
    for other in existing:
        if (
            other.vis_type.name == mapping.vis_type.name
            and other.assignment == mapping.assignment
        ):
            return True
    return False
